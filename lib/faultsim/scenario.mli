(** Catalogue of self-contained device+application+property scenarios the
    fault-injection engine can rebuild from scratch for every run.

    Determinism contract: [build] must construct a fresh device, fresh
    NVM and fresh monitors every time, with no dependence on wall-clock
    time or global mutable state, so that two runs of the same injection
    schedule produce byte-identical traces. *)

open Artemis

type built = {
  device : Device.t;
  app : Task.app;
  suite : Suite.t;
  machines : Fsm.Ast.machine list;
      (** the deployed property machines, in deployment order - the
          golden oracle re-executes them on a pristine store *)
  config : Runtime.config;
  adaptations : (int * Adapt.update) list;
      (** live property updates delivered mid-run (PR 4); empty for the
          classic scenarios *)
  freshness : Consistency.Freshness.t option;
      (** input-freshness tracker wired to the device's record
          chokepoint (PR 7); its violations become the campaign's
          [input-freshness] oracle.  [None] for scenarios without a
          freshness budget. *)
  backend : Backend.b;
      (** the task-execution backend the run hosts (PR 10);
          {!Artemis.Backend.immortal} for the classic scenarios *)
}

type t = {
  name : string;
  description : string;
  build : engine:Monitor.engine option -> seed:int -> built;
      (** [seed] feeds the task-context PRNG; [engine] selects the
          monitor execution backend (default [Compiled]) *)
}

val quickstart : t
(** [examples/quickstart.ml] verbatim: sample -> doomed transmit under a
    3.2 mJ capacitor, one [maxTries: 3 onFail: skipPath] property. *)

val health : t
(** The Figure 4-6 wearable benchmark: three paths, the full Figure 5
    property specification, 1-minute charging delay. *)

val quickstart_adapt : t
(** {!quickstart} plus a live update at iteration 3 replacing the
    maxTries property - drives the campaign through the update-window
    crash sites. *)

val health_adapt : t
(** {!health} plus a live update at iteration 40 tightening the MITD
    window (persistent [attempts] migrated) and removing
    [maxDuration_send]. *)

val quickstart_fresh : t
(** {!quickstart} plus a 10-minute input-freshness budget on
    [transmit <- sample]: green under every clean campaign, the mutation
    target for the freshness chaos hooks. *)

val stale_read : t
(** Deliberately buggy: the consumer's 10 s freshness budget is shorter
    than the 30 s charging delay, so any injected crash between the
    producer's and the consumer's commits makes the consumed input
    stale.  Only the [input-freshness] oracle fires. *)

val war_buggy : t
(** Deliberately buggy: a task read-modify-writes a Runtime-region FRAM
    cell outside its transaction.  Invisible to all five dynamic
    oracles (task transactions only guard the Application region) -
    exactly the gap the static WAR pass
    ({!Artemis.Consistency.War}) closes. *)

val livelock_prop : t
(** Seeded over-budget scenario (PR 9): a micro-capacitor device
    (1.0 uJ usable) whose deployed property is admissible, plus a
    scheduled OTA update whose 20-store monitor body bounds far above
    one charge.  The energy-admissibility report must classify the
    payload "may livelock" and the adaptation validate step must refuse
    it with an [energy-inadmissible] reason; the update is scheduled
    past the app's lifetime, so ordinary runs complete cleanly. *)

val with_freshness :
  t ->
  name:string ->
  description:string ->
  budget:Artemis.Time.t ->
  reads:(string * string list) list ->
  t
(** Attach an input-freshness tracker (budget + consumer/source
    declarations) to a scenario; the rebuilt scenario allocates a fresh
    tracker per build, keeping parallel campaigns deterministic. *)

val with_engine : Monitor.engine -> t -> t
(** Pin the scenario's monitor engine: the returned scenario builds the
    same device and application but deploys its suite with [engine],
    ignoring any engine passed to [build].  Name and description are
    unchanged, so campaign reports stay comparable across engines. *)

val with_backend : Backend.b -> name:string -> description:string -> t -> t
(** Run the scenario's application under a different task-execution
    backend (PR 10): same device, monitors and properties, a different
    commit protocol.  The campaign's injection numbering is unchanged -
    backend-specific sites simply never fire under other backends. *)

val quickstart_alpaca : t
(** {!quickstart} under the checkpoint-free Alpaca backend: tasks
    privatize their writes and commit via the two-phase log-then-swap
    protocol, exposing the four [alpaca.*] injection sites. *)

val all : t list
val find : string -> t option
