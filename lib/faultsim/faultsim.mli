(** Deterministic power-failure fault-injection engine.

    The runtime and the NVM store expose numbered {e injection sites} -
    probe callbacks placed immediately before and after every piece of
    crash-critical bookkeeping (FRAM writes, transaction commits, monitor
    steps, event-cell updates, verdict application).  A {e schedule} names
    the exact dynamic instants at which to inject power failures; running
    a scenario under a schedule is fully deterministic, so any failing
    campaign run collapses to a one-line reproducer.

    After every run six invariant oracles check the crash-consistency
    contract the paper's runtime promises (Sections 3.1 and 4.1):

    - {b task-atomicity}: committed application-region FRAM only ever
      changes at transaction commit points - an injected crash can never
      expose a half-executed task.  Under the Alpaca backend (PR 10) the
      two-phase commit opens one more legitimate window: from the
      instant the commit log seals the region may also equal the
      {e promised} post-state, and the swap must publish exactly that
      write set (a torn publish is a violation);
    - {b golden re-execution}: replaying the journal of committed monitor
      calls against a pristine monitor suite reproduces the run's final
      monitor FRAM exactly (write-through immortal monitors lose nothing
      and double-apply nothing);
    - {b action-at-most-once}: every corrective action in the trace is
      justified by a fresh monitor verdict (no stale verdict is ever
      re-applied after a reboot);
    - {b stable-footprint}: injected runs allocate exactly the FRAM/RAM
      cells of the uninjected baseline (recovery paths never leak
      persistent state);
    - {b update-exactly-once}: a live property update delivered mid-run
      (PR 4) is applied exactly once, however many crashes interrupt its
      installation window;
    - {b input-freshness} (PR 7): scenarios built with
      {!Scenario.with_freshness} carry an
      {!Artemis.Consistency.Freshness} tracker on the device's record
      chokepoint; any declared consumer that starts or commits against
      producer data older than the scenario's budget - data age
      accumulates silently across power failures - becomes a campaign
      violation. *)

(** {2 Injection sites} *)

val sites : string array
(** All injection-point labels, in numbering order:
    {!Nvm.injection_sites} first, then {!Runtime.injection_sites}, then
    {!Artemis.Alpaca.injection_sites} (PR 10) - the historic ids [0,19]
    are stable. *)

val site_count : int

val site_id : string -> int
(** @raise Not_found for an unknown label. *)

(** {2 Schedules} *)

type schedule = (int * int) list
(** [(site, occurrence)] pairs, consumed head-first: fail at the
    [occurrence]-th hit (0-based) of [site], counting hits since the
    previous injection.  Each entry fires exactly once, so every run
    terminates once the schedule is exhausted. *)

val schedule_to_string : schedule -> string
(** ["3@0,7@2"]; the empty schedule prints as ["-"]. *)

val schedule_of_string : string -> (schedule, string) result

val replay_line : seed:int -> schedule -> string
(** The one-line reproducer: ["<seed>:<schedule>"]. *)

val parse_replay : string -> (int * schedule, string) result

(** {2 Single runs} *)

type violation = { oracle : string; detail : string }

type run_result = {
  seed : int;
  schedule : schedule;
  fired : (int * int) list;  (** schedule prefix that actually injected *)
  hits : int array;  (** probe hits per site over the whole run *)
  outcome : string;
  power_failures : int;
  digest : string;  (** hex MD5 of the rendered trace *)
  footprint : string;  (** rendered FRAM/RAM cell fingerprint *)
  violations : violation list;
}

val run_schedule : Scenario.t -> seed:int -> schedule -> run_result
(** Build the scenario fresh, run it with the schedule installed, then
    apply every oracle.  The footprint oracle needs a baseline and is
    applied by the campaign drivers, not here. *)

(** {2 Campaigns} *)

type campaign = {
  scenario : string;
  mode : string;  (** ["exhaustive"] or ["random"] *)
  depth : int;
  campaign_seed : int;
  baseline : run_result;  (** uninjected run: footprint + digest anchor *)
  runs : run_result list;
  covered : int list;  (** site ids that injected at least once *)
  shrunk : string option;
      (** minimal violating reproducer (replay line), when any run
          violated an oracle *)
}

val exhaustive : ?jobs:int -> Scenario.t -> seed:int -> depth:int -> campaign
(** Bounded-exhaustive.  Level 1 is complete over {e dynamic} crash
    instants: one run per (site, occurrence) pair the baseline run
    exhibits - every probed instruction execution gets crashed exactly
    once.  Levels 2..[depth] chain further occurrence-0 failures onto
    each level-1 instant ([site_count] more runs per schedule per
    level).

    [jobs] (default 1) fans the runs out over that many domains with a
    work-stealing queue; every run executes against its own fresh
    [Obs] context and device, and the per-run contexts are merged back
    in run-id order, so the campaign record, JSON report and exported
    trace are byte-identical for every [jobs] value. *)

val random_campaign :
  ?jobs:int -> Scenario.t -> seed:int -> runs:int -> max_depth:int -> campaign
(** Seeded random schedules: run [i] draws its own seed, a depth in
    [1, max_depth] and per-entry sites/occurrences from a splitmix64
    stream split off the campaign generator at index [i]
    ({!Artemis.Prng.split}) - a pure function of [(seed, i)], so the
    whole campaign is reproducible from [seed], results are independent
    of [jobs] as in {!exhaustive}, and fan-out starts immediately with
    no sequential pre-draw or all-schedules materialisation.  On the
    first violating run the schedule is greedily shrunk (drop entries,
    then lower occurrences) to a minimal reproducer. *)

val total_violations : campaign -> int

val replay : Scenario.t -> line:string -> (run_result * bool, string) result
(** Re-run a reproducer line twice from scratch; the boolean is whether
    the two trace digests are byte-identical (determinism check). *)

(** {2 Reports} *)

val campaign_to_json : campaign -> string
(** Hand-rendered JSON with a fixed key order, so reports diff cleanly. *)

val output_campaign_json : out_channel -> campaign -> unit
(** The same document streamed row by row to [oc]: a campaign-scale
    report is never held in memory as one string.  Byte-identical to
    {!campaign_to_json}. *)

val json_string : string -> string
(** One JSON string literal (escaped, quoted) in the house rendering -
    shared with the fleet report writer so the two reports escape
    identically. *)

val campaign_summary : campaign -> string
(** Short human-readable summary (used by the CLI and the cram test). *)
