open Artemis

type built = {
  device : Device.t;
  app : Task.app;
  suite : Suite.t;
  machines : Fsm.Ast.machine list;
  config : Runtime.config;
  adaptations : (int * Adapt.update) list;
  freshness : Consistency.Freshness.t option;
  backend : Backend.b;
}

type t = {
  name : string;
  description : string;
  build : engine:Monitor.engine option -> seed:int -> built;
}

let deploy ?engine device app spec ~seed =
  let machines = compile_exn ~app spec in
  let suite = deploy ?engine device machines in
  let config = { Runtime.default_config with seed } in
  {
    device;
    app;
    suite;
    machines;
    config;
    adaptations = [];
    freshness = None;
    backend = Backend.immortal;
  }

(* examples/quickstart.ml, reconstructed fresh on every call. *)
let quickstart =
  let build ~engine ~seed =
    let capacitor =
      Capacitor.create ~capacity:(Energy.mj 3.2) ~on_threshold:(Energy.mj 3.1)
        ~off_threshold:(Energy.mj 0.2) ()
    in
    let device =
      Device.create ~capacitor
        ~policy:(Charging_policy.Fixed_delay (Time.of_sec 30))
        ()
    in
    let nvm = Device.nvm device in
    let samples =
      Channel.create nvm ~name:"samples" ~bytes_per_item:4 ~capacity:4
    in
    let sample =
      Task.make ~name:"sample" ~duration:(Time.of_ms 100) ~power:(Energy.mw 2.)
        ~body:(fun _ -> Channel.push samples 21.5)
        ()
    in
    let transmit =
      Task.make ~name:"transmit" ~duration:(Time.of_ms 120)
        ~power:(Energy.mw 26.) ()
    in
    let app =
      Task.app ~name:"quickstart"
        [ { Task.index = 1; tasks = [ sample; transmit ] } ]
    in
    deploy ?engine device app "transmit: { maxTries: 3 onFail: skipPath; }"
      ~seed
  in
  {
    name = "quickstart";
    description =
      "sample -> doomed transmit, maxTries:3 skipPath, 3.2 mJ capacitor";
    build;
  }

let health =
  let build ~engine ~seed =
    let device = Device.create () in
    let app, _handles = Health_app.make (Device.nvm device) in
    deploy ?engine device app Health_app.spec_text ~seed
  in
  {
    name = "health";
    description = "wearable health benchmark (Figures 4-6), full spec";
    build;
  }

(* --- live-adaptation scenarios (PR 4): same devices, plus a mid-run
   property update so the campaign can crash inside the update window --- *)

let with_adaptations base ~name ~description adaptations =
  {
    name;
    description;
    build =
      (fun ~engine ~seed ->
        let b = base.build ~engine ~seed in
        { b with adaptations });
  }

let quickstart_adapt =
  (* Tighten the doomed transmit's retry budget mid-run: replaces the
     deployed maxTries_transmit monitor (same name, compatible layout). *)
  with_adaptations quickstart ~name:"quickstart-adapt"
    ~description:
      "quickstart plus a live update at iteration 3 replacing the maxTries \
       property (maxTries: 3 -> 2)"
    [ (3, Adapt.spec_update ~id:1 "transmit: { maxTries: 2 onFail: skipPath; }") ]

let health_adapt =
  (* Tighten the MITD window (same machine name, persistent [attempts]
     carried over by migration) and retire the maxDuration property in
     one update: exercises replacement, migration and removal on the
     full benchmark suite. *)
  with_adaptations health ~name:"health-adapt"
    ~description:
      "health benchmark plus a live update at iteration 40 tightening the \
       MITD window (5min -> 4min, attempts migrated) and removing \
       maxDuration_send"
    [
      ( 40,
        Adapt.spec_update ~id:1 ~remove:[ "maxDuration_send" ]
          "send: { MITD: 4min dpTask: accel onFail: restartPath maxAttempt: 3 \
           onFail: skipPath Path: 2; }" );
    ]

(* --- consistency & freshness scenarios (PR 7) --- *)

(* Attach an input-freshness tracker to a scenario: the tracker reads
   the device's simulated clock and revert counter and subscribes to the
   Device.record chokepoint, so every task event the run logs feeds it.
   One fresh tracker per build keeps parallel campaigns deterministic. *)
let with_freshness base ~name ~description ~budget ~reads =
  {
    name;
    description;
    build =
      (fun ~engine ~seed ->
        let b = base.build ~engine ~seed in
        let device = b.device in
        let nvm = Device.nvm device in
        let tracker =
          Consistency.Freshness.create
            ~clock:(fun () -> Time.to_us (Device.sim_time device))
            ~in_tx:(fun () -> Nvm.in_tx nvm)
            ~revert_count:(fun () -> Nvm.revert_count nvm)
            ~budget ~reads ()
        in
        Device.set_on_record device
          (Some (Consistency.Freshness.on_event tracker));
        { b with freshness = Some tracker });
  }

let quickstart_fresh =
  (* quickstart under a generous freshness budget: the doomed transmit
     retries across 30 s charging delays, but sample's data never ages
     past 10 minutes, so the oracle stays silent - until a chaos hook
     (skipped stamps, recovery clock skip) re-introduces the bug. *)
  with_freshness quickstart ~name:"quickstart-fresh"
    ~description:
      "quickstart plus an input-freshness budget: transmit must consume \
       sample data younger than 10 minutes"
    ~budget:(Time.of_min 10)
    ~reads:[ ("transmit", [ "sample" ]) ]

(* Deliberately-buggy app #1: a driver-shim task that accumulates into a
   raw Runtime-region FRAM word with a direct write - the classic WAR
   hazard.  The task-atomicity oracle only snapshots the Application
   region (task transactions only protect application state), so no
   dynamic oracle can see the double-apply; only the static WAR pass
   flags it.  That asymmetry is this scenario's reason to exist. *)
let war_buggy =
  let build ~engine ~seed =
    let device = Device.create () in
    let nvm = Device.nvm device in
    let samples =
      Channel.create nvm ~name:"samples" ~bytes_per_item:4 ~capacity:4
    in
    let acc =
      Nvm.cell nvm ~region:Nvm.Runtime ~name:"drv.filter.acc" ~bytes:4 0
    in
    let sense =
      Task.make ~name:"sense" ~duration:(Time.of_ms 100) ~power:(Energy.mw 2.)
        ~body:(fun _ -> Channel.push samples 19.0)
        ()
    in
    let filter =
      Task.make ~name:"filter" ~duration:(Time.of_ms 80) ~power:(Energy.mw 3.)
        ~body:(fun _ ->
          (* BUG (deliberate): read-modify-write of persistent state
             outside the task transaction - re-execution double-counts *)
          Nvm.write acc (Nvm.read acc + 1))
        ()
    in
    let app =
      Task.app ~name:"war-buggy"
        [ { Task.index = 1; tasks = [ sense; filter ] } ]
    in
    deploy ?engine device app "filter: { maxTries: 3 onFail: skipPath; }"
      ~seed
  in
  {
    name = "war-buggy";
    description =
      "deliberately buggy: filter read-modify-writes a Runtime-region cell \
       outside its transaction (WAR hazard for the static pass; invisible \
       to the dynamic oracles)";
    build;
  }

(* Deliberately-buggy app #2: the consumer's freshness budget (10 s) is
   shorter than the charging delay (30 s).  The uninjected baseline runs
   both tasks on one charge and stays green; any injected crash between
   the sense commit and the report commit inserts a 30 s outage, so the
   report consumes stale data and the input-freshness oracle fires.  No
   other oracle is violated: state stays transactional throughout. *)
let stale_read =
  let base =
    let build ~engine ~seed =
      let device =
        Device.create ~policy:(Charging_policy.Fixed_delay (Time.of_sec 30)) ()
      in
      let nvm = Device.nvm device in
      let samples =
        Channel.create nvm ~name:"samples" ~bytes_per_item:4 ~capacity:4
      in
      let reported = Nvm.cell nvm ~region:Nvm.Application ~name:"reported" ~bytes:4 0 in
      let sense =
        Task.make ~name:"sense" ~duration:(Time.of_ms 100)
          ~power:(Energy.mw 2.)
          ~body:(fun _ -> Channel.push samples 23.4)
          ()
      in
      let report =
        Task.make ~name:"report" ~duration:(Time.of_ms 120)
          ~power:(Energy.mw 5.)
          ~body:(fun _ ->
            let items = Channel.take_all samples in
            Nvm.tx_write reported (Nvm.read reported + List.length items))
          ()
      in
      let app =
        Task.app ~name:"stale-read"
          [ { Task.index = 1; tasks = [ sense; report ] } ]
      in
      deploy ?engine device app "report: { maxTries: 5 onFail: skipPath; }"
        ~seed
    in
    { name = "stale-read"; description = ""; build }
  in
  with_freshness base ~name:"stale-read"
    ~description:
      "deliberately buggy: report's 10 s freshness budget is shorter than \
       the 30 s charging delay, so any crash between sense and report \
       commits makes the consumed data stale"
    ~budget:(Time.of_sec 10)
    ~reads:[ ("report", [ "sense" ]) ]

(* Seeded over-budget scenario (PR 9): a micro-capacitor device whose
   deployed property is energy-admissible, plus a scheduled OTA update
   carrying a property whose worst-case monitor-call bound exceeds the
   whole usable charge budget - the energy-admissibility analysis must
   classify it "may livelock" and the adaptation validate step must
   refuse it as energy-inadmissible.  The update is scheduled far past
   the app's lifetime, so normal runs complete cleanly; only the static
   report and the validate path ever see the heavy payload. *)
let livelock_prop =
  (* ~20 FRAM stores per fired body at nvm_write_cycles each: the
     structural bound alone dwarfs the 1.0 uJ usable budget. *)
  let heavy_machine_src =
    let vars =
      String.concat "\n  "
        (List.init 20 (fun i -> Printf.sprintf "var w%d : int = 0;" i))
    in
    let stmts =
      String.concat "\n      "
        (List.init 20 (fun i -> Printf.sprintf "w%d := (w%d + 1);" i i))
    in
    Printf.sprintf
      "machine audit_log {\n\
      \  %s\n\
      \  initial state Idle {\n\
      \    on endTask(ping) {\n\
      \      %s\n\
      \    } -> Idle;\n\
      \  }\n\
       }"
      vars stmts
  in
  let build ~engine ~seed =
    let capacitor =
      Capacitor.create ~capacity:(Energy.uj 1.8) ~on_threshold:(Energy.uj 1.6)
        ~off_threshold:(Energy.uj 0.8) ()
    in
    let device =
      Device.create ~capacitor
        ~policy:(Charging_policy.Fixed_delay (Time.of_sec 1))
        ()
    in
    let ping =
      Task.make ~name:"ping" ~duration:(Time.of_us 200) ~power:(Energy.mw 1.2)
        ()
    in
    let app =
      Task.app ~name:"livelock-prop" [ { Task.index = 1; tasks = [ ping ] } ]
    in
    let b =
      deploy ?engine device app "ping: { maxTries: 3 onFail: skipPath; }" ~seed
    in
    {
      b with
      adaptations = [ (1_000_000, Adapt.machine_update ~id:1 heavy_machine_src) ];
    }
  in
  {
    name = "livelock-prop";
    description =
      "seeded over-budget update: 1.0 uJ usable budget, scheduled OTA payload \
       whose 20-store monitor body can never complete a call on one charge \
       (must classify 'may livelock' and be refused as energy-inadmissible)";
    build;
  }

let with_engine engine base =
  { base with build = (fun ~engine:_ ~seed -> base.build ~engine:(Some engine) ~seed) }

(* --- runtime-matrix scenarios (PR 10): same device and monitors, a
   different task commit protocol --- *)

let with_backend backend ~name ~description base =
  {
    name;
    description;
    build =
      (fun ~engine ~seed ->
        let b = base.build ~engine ~seed in
        { b with backend });
  }

let quickstart_alpaca =
  with_backend Alpaca.backend ~name:"quickstart-alpaca"
    ~description:
      "quickstart under the checkpoint-free Alpaca backend (two-phase \
       log-then-swap commit, four protocol injection sites)"
    quickstart

let all =
  [ quickstart; health; quickstart_adapt; health_adapt; quickstart_fresh;
    stale_read; war_buggy; livelock_prop; quickstart_alpaca ]

let find name = List.find_opt (fun s -> s.name = name) all
