open Artemis

type built = {
  device : Device.t;
  app : Task.app;
  suite : Suite.t;
  machines : Fsm.Ast.machine list;
  config : Runtime.config;
  adaptations : (int * Adapt.update) list;
}

type t = {
  name : string;
  description : string;
  build : engine:Monitor.engine option -> seed:int -> built;
}

let deploy ?engine device app spec ~seed =
  let machines = compile_exn ~app spec in
  let suite = deploy ?engine device machines in
  let config = { Runtime.default_config with seed } in
  { device; app; suite; machines; config; adaptations = [] }

(* examples/quickstart.ml, reconstructed fresh on every call. *)
let quickstart =
  let build ~engine ~seed =
    let capacitor =
      Capacitor.create ~capacity:(Energy.mj 3.2) ~on_threshold:(Energy.mj 3.1)
        ~off_threshold:(Energy.mj 0.2) ()
    in
    let device =
      Device.create ~capacitor
        ~policy:(Charging_policy.Fixed_delay (Time.of_sec 30))
        ()
    in
    let nvm = Device.nvm device in
    let samples =
      Channel.create nvm ~name:"samples" ~bytes_per_item:4 ~capacity:4
    in
    let sample =
      Task.make ~name:"sample" ~duration:(Time.of_ms 100) ~power:(Energy.mw 2.)
        ~body:(fun _ -> Channel.push samples 21.5)
        ()
    in
    let transmit =
      Task.make ~name:"transmit" ~duration:(Time.of_ms 120)
        ~power:(Energy.mw 26.) ()
    in
    let app =
      Task.app ~name:"quickstart"
        [ { Task.index = 1; tasks = [ sample; transmit ] } ]
    in
    deploy ?engine device app "transmit: { maxTries: 3 onFail: skipPath; }"
      ~seed
  in
  {
    name = "quickstart";
    description =
      "sample -> doomed transmit, maxTries:3 skipPath, 3.2 mJ capacitor";
    build;
  }

let health =
  let build ~engine ~seed =
    let device = Device.create () in
    let app, _handles = Health_app.make (Device.nvm device) in
    deploy ?engine device app Health_app.spec_text ~seed
  in
  {
    name = "health";
    description = "wearable health benchmark (Figures 4-6), full spec";
    build;
  }

(* --- live-adaptation scenarios (PR 4): same devices, plus a mid-run
   property update so the campaign can crash inside the update window --- *)

let with_adaptations base ~name ~description adaptations =
  {
    name;
    description;
    build =
      (fun ~engine ~seed ->
        let b = base.build ~engine ~seed in
        { b with adaptations });
  }

let quickstart_adapt =
  (* Tighten the doomed transmit's retry budget mid-run: replaces the
     deployed maxTries_transmit monitor (same name, compatible layout). *)
  with_adaptations quickstart ~name:"quickstart-adapt"
    ~description:
      "quickstart plus a live update at iteration 3 replacing the maxTries \
       property (maxTries: 3 -> 2)"
    [ (3, Adapt.spec_update ~id:1 "transmit: { maxTries: 2 onFail: skipPath; }") ]

let health_adapt =
  (* Tighten the MITD window (same machine name, persistent [attempts]
     carried over by migration) and retire the maxDuration property in
     one update: exercises replacement, migration and removal on the
     full benchmark suite. *)
  with_adaptations health ~name:"health-adapt"
    ~description:
      "health benchmark plus a live update at iteration 40 tightening the \
       MITD window (5min -> 4min, attempts migrated) and removing \
       maxDuration_send"
    [
      ( 40,
        Adapt.spec_update ~id:1 ~remove:[ "maxDuration_send" ]
          "send: { MITD: 4min dpTask: accel onFail: restartPath maxAttempt: 3 \
           onFail: skipPath Path: 2; }" );
    ]

let with_engine engine base =
  { base with build = (fun ~engine:_ ~seed -> base.build ~engine:(Some engine) ~seed) }

let all = [ quickstart; health; quickstart_adapt; health_adapt ]
let find name = List.find_opt (fun s -> s.name = name) all
