open Artemis

(* The differential runtime matrix (PR 10): one scenario, every
   registered backend, the same monitors.  The reference row is the
   first registry entry (immortal); every other backend must reproduce
   its verdict stream exactly - same monitor verdicts and corrective
   actions, in the same order.  Timestamps and energy are backend cost,
   not semantics, so they are compared as columns, not as equality. *)

type row = {
  backend : string;
  description : string;
  outcome : string;
  power_failures : int;
  reboots : int;
  task_executions : int;
  total_time : Time.t;
  energy_total : Energy.energy;
  energy_app : Energy.energy;
  energy_runtime : Energy.energy;
  energy_monitor : Energy.energy;
  runtime_fram_bytes : int;
  verdicts : string list;
  agrees : bool;
}

type report = {
  scenario : string;
  seed : int;
  reference : string;
  rows : row list;
  agreement : bool;
}

let outcome_string (s : Stats.t) =
  match s.Stats.outcome with
  | Stats.Completed -> "completed"
  | Stats.Did_not_finish reason -> "dnf:" ^ reason

(* The semantic stream: monitor verdicts and the corrective actions they
   trigger, rendered without timestamps (backends shift time, never
   meaning). *)
let verdict_stream log =
  List.filter_map
    (fun (e : Event.timed) ->
      match e.Event.event with
      | Event.Monitor_verdict _ | Event.Runtime_action _ ->
          Some (Event.to_string e.Event.event)
      | _ -> None)
    (Log.events log)

let run_backend (scenario : Scenario.t) ~seed bk =
  let b =
    (Scenario.with_backend bk ~name:scenario.Scenario.name
       ~description:scenario.Scenario.description scenario)
      .Scenario.build ~engine:None ~seed
  in
  let stats =
    Runtime.run ~config:b.Scenario.config ~adaptations:b.Scenario.adaptations
      ~backend:b.Scenario.backend b.Scenario.device b.Scenario.app
      b.Scenario.suite
  in
  let verdicts = verdict_stream (Device.log b.Scenario.device) in
  {
    backend = Backend.name bk;
    description = Backend.description bk;
    outcome = outcome_string stats;
    power_failures = stats.Stats.power_failures;
    reboots = stats.Stats.reboots;
    task_executions = stats.Stats.task_executions;
    total_time = stats.Stats.total_time;
    energy_total = stats.Stats.energy_total;
    energy_app = stats.Stats.energy_app;
    energy_runtime = stats.Stats.energy_runtime;
    energy_monitor = stats.Stats.energy_monitor;
    runtime_fram_bytes =
      Nvm.footprint (Device.nvm b.Scenario.device) ~kind:Nvm.Fram
        ~region:Nvm.Runtime;
    verdicts;
    agrees = true;
  }

let run ?(backends = Backends.all) (scenario : Scenario.t) ~seed =
  match backends with
  | [] -> invalid_arg "Matrix.run: no backends"
  | reference_bk :: _ ->
      let rows = List.map (run_backend scenario ~seed) backends in
      let reference = List.hd rows in
      let rows =
        List.map
          (fun r -> { r with agrees = r.verdicts = reference.verdicts })
          rows
      in
      {
        scenario = scenario.Scenario.name;
        seed;
        reference = Backend.name reference_bk;
        rows;
        agreement = List.for_all (fun r -> r.agrees) rows;
      }

let summary report =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "runtime matrix: %s (seed %d), verdict reference %s\n" report.scenario
    report.seed report.reference;
  let table =
    Table.create
      ~headers:
        [ "backend"; "outcome"; "fails"; "execs"; "E_app mJ"; "E_rt mJ";
          "E_mon mJ"; "rt FRAM B"; "verdicts"; "agree" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.backend;
          r.outcome;
          string_of_int r.power_failures;
          string_of_int r.task_executions;
          Printf.sprintf "%.3f" (Energy.to_mj r.energy_app);
          Printf.sprintf "%.3f" (Energy.to_mj r.energy_runtime);
          Printf.sprintf "%.3f" (Energy.to_mj r.energy_monitor);
          string_of_int r.runtime_fram_bytes;
          string_of_int (List.length r.verdicts);
          (if r.agrees then "yes" else "NO");
        ])
    report.rows;
  Buffer.add_string buf (Table.render table);
  Buffer.add_char buf '\n';
  if report.agreement then
    add "verdict streams: all %d backends agree\n" (List.length report.rows)
  else begin
    add "VERDICT DIVERGENCE against %s:\n" report.reference;
    let reference =
      List.find (fun r -> r.backend = report.reference) report.rows
    in
    List.iter
      (fun r ->
        if not r.agrees then
          add "  %s: [%s] vs reference [%s]\n" r.backend
            (String.concat "; " r.verdicts)
            (String.concat "; " reference.verdicts))
      report.rows
  end;
  Buffer.contents buf

let to_json report =
  let js = Faultsim.json_string in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"scenario\": %s,\n" (js report.scenario);
  add "  \"seed\": %d,\n" report.seed;
  add "  \"reference\": %s,\n" (js report.reference);
  add "  \"rows\": [\n";
  let last = List.length report.rows - 1 in
  List.iteri
    (fun i r ->
      add
        "    {\"backend\": %s, \"outcome\": %s, \"power_failures\": %d, \
         \"task_executions\": %d, \"energy_app_mj\": %.6f, \
         \"energy_runtime_mj\": %.6f, \"energy_monitor_mj\": %.6f, \
         \"runtime_fram_bytes\": %d, \"verdicts\": [%s], \"agrees\": %b}%s\n"
        (js r.backend) (js r.outcome) r.power_failures r.task_executions
        (Energy.to_mj r.energy_app)
        (Energy.to_mj r.energy_runtime)
        (Energy.to_mj r.energy_monitor)
        r.runtime_fram_bytes
        (String.concat ", " (List.map js r.verdicts))
        r.agrees
        (if i = last then "" else ",")
    )
    report.rows;
  add "  ],\n";
  add "  \"agreement\": %b\n" report.agreement;
  add "}\n";
  Buffer.contents buf
