(** Differential runtime matrix (PR 10): one scenario executed under
    every registered task-execution backend
    ({!Artemis.Backends.all}), same device model, same monitors, same
    properties.

    The semantic contract: runtime monitoring must be {e backend-
    independent}.  Each run's stream of monitor verdicts and corrective
    actions (timestamps stripped - backends shift cost, never meaning)
    must equal the reference backend's stream; energy split, power
    failures and runtime-region FRAM are reported as comparison columns,
    Table-3 style, not required to match. *)

open Artemis

type row = {
  backend : string;
  description : string;
  outcome : string;  (** ["completed"] or ["dnf:<reason>"] *)
  power_failures : int;
  reboots : int;
  task_executions : int;
  total_time : Time.t;
  energy_total : Energy.energy;
  energy_app : Energy.energy;
  energy_runtime : Energy.energy;
  energy_monitor : Energy.energy;
  runtime_fram_bytes : int;
      (** measured Runtime-region FRAM footprint (scheduler cells plus
          the backend's own protocol cells) *)
  verdicts : string list;  (** rendered verdict/action stream, in order *)
  agrees : bool;  (** verdict stream equals the reference row's *)
}

type report = {
  scenario : string;
  seed : int;
  reference : string;  (** first backend in the matrix *)
  rows : row list;  (** registry order, reference first *)
  agreement : bool;  (** every row agrees *)
}

val run : ?backends:Backend.b list -> Scenario.t -> seed:int -> report
(** Run the scenario once per backend (default: the full
    {!Artemis.Backends.all} registry; the first entry is the verdict
    reference).  Each run rebuilds the scenario from scratch, so rows
    are independent and deterministic.
    @raise Invalid_argument on an empty backend list. *)

val summary : report -> string
(** Human-readable comparison table plus an agreement verdict; on
    divergence the differing verdict streams are printed in full. *)

val to_json : report -> string
(** Fixed key order, so matrix reports diff cleanly. *)
