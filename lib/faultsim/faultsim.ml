open Artemis
module Par = Artemis_util.Par

(* --- injection sites (Nvm numbering first, then Runtime, then the
   Alpaca two-phase-commit windows appended by PR 10 so the historic
   numbering [0,19] stays stable) --- *)

let sites =
  Array.of_list
    (Nvm.injection_sites @ Runtime.injection_sites @ Alpaca.injection_sites)
let site_count = Array.length sites

(* Shared-mutable audit (PR 5): this table is populated once at module
   initialisation and is read-only afterwards, so concurrent lookups
   from worker domains are safe (no resize can occur). *)
let site_ids : (string, int) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun i label -> Hashtbl.replace tbl label i) sites;
  tbl

let site_id label = Hashtbl.find site_ids label

(* --- schedules and replay lines --- *)

type schedule = (int * int) list

let schedule_to_string = function
  | [] -> "-"
  | entries ->
      String.concat ","
        (List.map (fun (s, o) -> Printf.sprintf "%d@%d" s o) entries)

let schedule_of_string text =
  if text = "-" || text = "" then Ok []
  else
    let parse_entry e =
      match String.split_on_char '@' e with
      | [ s; o ] -> (
          match (int_of_string_opt s, int_of_string_opt o) with
          | Some s, Some o when s >= 0 && s < site_count && o >= 0 ->
              Ok (s, o)
          | Some s, Some _ when s < 0 || s >= site_count ->
              Error (Printf.sprintf "site %d out of range [0,%d]" s (site_count - 1))
          | _ -> Error (Printf.sprintf "malformed entry %S" e))
      | _ -> Error (Printf.sprintf "malformed entry %S (want site@occurrence)" e)
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest -> (
          match parse_entry e with
          | Ok entry -> go (entry :: acc) rest
          | Error _ as err -> err)
    in
    go [] (String.split_on_char ',' text)

let replay_line ~seed schedule =
  Printf.sprintf "%d:%s" seed (schedule_to_string schedule)

let parse_replay line =
  match String.index_opt line ':' with
  | None -> Error "malformed replay line (want <seed>:<schedule>)"
  | Some i -> (
      let seed_text = String.sub line 0 i in
      let sched_text = String.sub line (i + 1) (String.length line - i - 1) in
      match int_of_string_opt seed_text with
      | None -> Error (Printf.sprintf "malformed seed %S" seed_text)
      | Some seed ->
          Result.map (fun s -> (seed, s)) (schedule_of_string sched_text))

(* --- single runs --- *)

type violation = { oracle : string; detail : string }

type run_result = {
  seed : int;
  schedule : schedule;
  fired : (int * int) list;
  hits : int array;
  outcome : string;
  power_failures : int;
  digest : string;
  footprint : string;
  violations : violation list;
}

let outcome_string (s : Stats.t) =
  match s.Stats.outcome with
  | Stats.Completed -> "completed"
  | Stats.Did_not_finish reason -> "dnf:" ^ reason

let fingerprint nvm =
  [ ("runtime", Nvm.Runtime); ("monitor", Nvm.Monitor);
    ("application", Nvm.Application); ("staging", Nvm.Staging) ]
  |> List.map (fun (label, region) ->
         Printf.sprintf "%s fram=%dB ram=%dB cells=%s" label
           (Nvm.footprint nvm ~kind:Nvm.Fram ~region)
           (Nvm.footprint nvm ~kind:Nvm.Ram ~region)
           (String.concat "," (Nvm.cell_names nvm ~region)))
  |> String.concat "; "

let pp_val v = Format.asprintf "%a" Fsm.Ast.pp_value v

(* Oracle 2: golden re-execution.  Replay the journal of committed
   monitor calls (plus the committed prefix of an in-flight one) against
   a pristine suite on a fresh store; the monitors' FRAM must match.
   [Adapted] entries re-run the update through a fresh adaptation
   manager at the exact journal point, so the comparison target is the
   run's {e final} suite, whichever generation that is. *)
let golden_violations (b : Scenario.built) (result : Runtime.instrumented) =
  let violations = ref [] in
  let report detail =
    violations := { oracle = "golden-reexecution"; detail } :: !violations
  in
  let gnvm = Nvm.create () in
  let golden0 = Suite.create gnvm b.Scenario.machines in
  Suite.hard_reset golden0;
  let manager = Adapt.create gnvm ~app:b.Scenario.app golden0 in
  let golden = ref golden0 in
  List.iter
    (function
      | Runtime.Stepped ev -> ignore (Suite.step_all_unindexed !golden ev)
      | Runtime.Reinited tasks -> Suite.reinit_for_tasks !golden ~tasks
      | Runtime.Adapted { id; generation } -> (
          match
            List.find_opt
              (fun (_, (u : Adapt.update)) -> u.Adapt.id = id)
              b.Scenario.adaptations
          with
          | None ->
              report
                (Printf.sprintf "journaled update %d is not in the scenario" id)
          | Some (_, u) -> (
              ignore (Adapt.stage manager u);
              match Adapt.apply manager with
              | Adapt.Applied a when a.Adapt.generation = generation ->
                  golden := Adapt.active manager
              | Adapt.Applied a ->
                  report
                    (Printf.sprintf
                       "golden re-apply of update %d reached generation %d, \
                        journal says %d"
                       id a.Adapt.generation generation)
              | Adapt.Idle | Adapt.Rejected _ ->
                  report
                    (Printf.sprintf "golden re-apply of update %d diverged" id))))
    result.Runtime.journal;
  (match result.Runtime.partial with
  | None -> ()
  | Some (ev, pc) ->
      List.iteri
        (fun i m -> if i < pc then ignore (Monitor.step m ev))
        (Suite.monitors !golden));
  let actual_monitors = Suite.monitors result.Runtime.final_suite in
  let golden_monitors = Suite.monitors !golden in
  let names ms = String.concat "," (List.map Monitor.name ms) in
  if
    List.length actual_monitors <> List.length golden_monitors
    || not
         (List.for_all2
            (fun a g -> String.equal (Monitor.name a) (Monitor.name g))
            actual_monitors golden_monitors)
  then
    report
      (Printf.sprintf "torn suite: deployed [%s], golden [%s]"
         (names actual_monitors) (names golden_monitors))
  else
    List.iter2
      (fun actual gold ->
        let name = Monitor.name actual in
        let sa = Monitor.current_state actual and sg = Monitor.current_state gold in
        if sa <> sg then
          report (Printf.sprintf "%s: state %s, golden %s" name sa sg);
        List.iter
          (fun (vd : Fsm.Ast.var_decl) ->
            let va = Monitor.read_var actual vd.Fsm.Ast.var_name in
            let vg = Monitor.read_var gold vd.Fsm.Ast.var_name in
            if not (Fsm.Ast.same_value va vg) then
              report
                (Printf.sprintf "%s.%s: %s, golden %s" name vd.Fsm.Ast.var_name
                   (pp_val va) (pp_val vg)))
          (Monitor.machine actual).Fsm.Ast.vars)
      actual_monitors golden_monitors;
  List.rev !violations

(* Oracle 5 (PR 4): every scheduled update applies exactly once - at
   most one Adaptation_applied event per id ever, never a device-side
   rejection of a valid scenario update, and exactly one application in
   a run that completed. *)
let adaptation_violations (b : Scenario.built) (result : Runtime.instrumented)
    log =
  if b.Scenario.adaptations = [] then []
  else begin
    let violations = ref [] in
    let report detail =
      violations := { oracle = "update-exactly-once"; detail } :: !violations
    in
    let completed = result.Runtime.stats.Stats.outcome = Stats.Completed in
    List.iter
      (fun (_, (u : Adapt.update)) ->
        let applied =
          Log.count log (function
            | Event.Adaptation_applied { id; _ } -> id = u.Adapt.id
            | _ -> false)
        in
        let rejected =
          Log.count log (function
            | Event.Adaptation_rejected { id; _ } -> id = u.Adapt.id
            | _ -> false)
        in
        if applied > 1 then
          report (Printf.sprintf "update %d applied %d times" u.Adapt.id applied);
        if rejected > 0 then
          report
            (Printf.sprintf "update %d rejected by on-device validation"
               u.Adapt.id);
        if applied = 0 && completed then
          report
            (Printf.sprintf "update %d never applied in a completed run"
               u.Adapt.id))
      b.Scenario.adaptations;
    List.rev !violations
  end

(* Oracle 3: every corrective action in the trace must be justified by at
   least one monitor verdict recorded after the previous action - a
   reboot may retry a verdict (fresh verdicts re-appear) but may never
   re-apply a stale one. *)
let action_violations log =
  let fresh = ref 0 and violations = ref [] in
  List.iter
    (fun (e : Event.timed) ->
      match e.Event.event with
      | Event.Monitor_verdict _ -> incr fresh
      | Event.Runtime_action { action; task } ->
          if !fresh = 0 then
            violations :=
              {
                oracle = "action-at-most-once";
                detail =
                  Printf.sprintf "action %s on %s without a fresh verdict"
                    action task;
              }
              :: !violations
          else fresh := 0
      | _ -> ())
    (Log.events log);
  List.rev !violations

(* Oracle 6 (PR 7): input freshness.  The scenario's tracker audited
   every consumer start/commit as the run recorded events; harvest its
   violations.  Trackers are per-build, so parallel campaign runs stay
   independent and the report byte-identical for every --jobs. *)
let freshness_violations (b : Scenario.built) =
  match b.Scenario.freshness with
  | None -> []
  | Some tracker ->
      let budget = Consistency.Freshness.budget tracker in
      List.map
        (fun v ->
          {
            oracle = "input-freshness";
            detail = Consistency.Freshness.violation_to_string budget v;
          })
        (Consistency.Freshness.violations tracker)

let m_runs = Obs.counter "faultsim_runs"
let m_injected = Obs.counter "faultsim_injected"
let m_violations = Obs.counter "faultsim_violations"

let run_schedule (scenario : Scenario.t) ~seed schedule =
  let b = scenario.Scenario.build ~engine:None ~seed in
  Obs.incr m_runs;
  (* Each run's device clock restarts at zero; [Scenario.build] installed
     it as the trace clock, so the campaign span starts here. *)
  let span_begin = if Obs.tracing_enabled () then Obs.now_us () else 0 in
  let nvm = Device.nvm b.Scenario.device in
  let hits = Array.make site_count 0 in
  let since = Array.make site_count 0 in
  let remaining = ref schedule in
  let fired = ref [] in
  let violations = ref [] in
  (* Oracle 1 state: the committed application region as of the last
     commit point.  Updated at every commit, checked at every injected
     crash: a mid-transaction crash must not have moved it.  The Alpaca
     two-phase protocol (PR 10) opens a second legitimate window: from
     the instant the commit log seals ([alpaca.log.after]) the run may
     also be in the {e promised} post-state - the sealed write set
     captured logically (pending views included) at the seal - and in
     nothing else until the swap publishes it ([alpaca.swap.after]). *)
  let app_committed = ref (Nvm.snapshot_region nvm ~region:Nvm.Application) in
  let commit_after = site_id "nvm.commit_tx.after" in
  let log_after = site_id "alpaca.log.after" in
  let swap_after = site_id "alpaca.swap.after" in
  let sealed = ref false in
  let promised = ref [] in
  let changed_cells ~against now =
    List.filter_map
      (fun (name, digest) ->
        match List.assoc_opt name against with
        | Some d when d = digest -> None
        | _ -> Some name)
      now
  in
  let check_atomicity label =
    let now = Nvm.snapshot_region nvm ~region:Nvm.Application in
    if now = !app_committed then ()
    else if !sealed && now = !promised then
      (* the sealed two-phase commit landed between checks *)
      app_committed := now
    else
      violations :=
        {
          oracle = "task-atomicity";
          detail =
            Printf.sprintf
              "committed app cells changed outside a commit at %s: %s" label
              (String.concat "," (changed_cells ~against:!app_committed now));
        }
        :: !violations
  in
  let probe label =
    let id = site_id label in
    hits.(id) <- hits.(id) + 1;
    let occ = since.(id) in
    since.(id) <- occ + 1;
    if id = commit_after then
      app_committed := Nvm.snapshot_region nvm ~region:Nvm.Application
    else if id = log_after then begin
      (* a new log can only seal after the previous one published *)
      if !sealed then app_committed := !promised;
      promised := Nvm.snapshot_region_logical nvm ~region:Nvm.Application;
      sealed := true
    end
    else if id = swap_after then begin
      let now = Nvm.snapshot_region nvm ~region:Nvm.Application in
      if !sealed && now <> !promised then
        violations :=
          {
            oracle = "task-atomicity";
            detail =
              Printf.sprintf
                "two-phase commit published a torn write set: %s"
                (String.concat "," (changed_cells ~against:!promised now));
          }
          :: !violations;
      app_committed := now;
      sealed := false
    end;
    match !remaining with
    | (s, o) :: rest when s = id && o = occ ->
        remaining := rest;
        Array.fill since 0 site_count 0;
        fired := (s, o) :: !fired;
        Obs.incr m_injected;
        check_atomicity label;
        raise (Nvm.Injected_failure label)
    | _ -> ()
  in
  let result =
    Runtime.run_instrumented ~config:b.Scenario.config
      ~adaptations:b.Scenario.adaptations ~backend:b.Scenario.backend ~probe
      b.Scenario.device b.Scenario.app b.Scenario.suite
  in
  check_atomicity "end-of-run";
  let violations =
    List.rev !violations
    @ golden_violations b result
    @ action_violations (Device.log b.Scenario.device)
    @ adaptation_violations b result (Device.log b.Scenario.device)
    @ freshness_violations b
  in
  Obs.add m_violations (List.length violations);
  if Obs.tracing_enabled () then begin
    let end_us = Obs.now_us () in
    Obs.span ~cat:"faultsim"
      ~args:
        [ ("seed", Obs.I seed);
          ("schedule", Obs.S (schedule_to_string schedule));
          ("outcome", Obs.S (outcome_string result.Runtime.stats)) ]
      ~begin_us:span_begin ~end_us scenario.Scenario.name;
    List.iter
      (fun v ->
        Obs.instant ~cat:"faultsim" ~ts:end_us
          ~args:[ ("oracle", Obs.S v.oracle); ("detail", Obs.S v.detail) ]
          "violation")
      violations;
    (* Lay sequential campaign runs end-to-end on one exported timeline,
       separated by a one-second gap. *)
    Obs.set_base (end_us + 1_000_000)
  end;
  {
    seed;
    schedule;
    fired = List.rev !fired;
    hits;
    outcome = outcome_string result.Runtime.stats;
    power_failures = result.Runtime.stats.Stats.power_failures;
    digest = Export.log_digest (Device.log b.Scenario.device);
    footprint = fingerprint nvm;
    violations;
  }

(* --- campaigns --- *)

type campaign = {
  scenario : string;
  mode : string;
  depth : int;
  campaign_seed : int;
  baseline : run_result;
  runs : run_result list;
  covered : int list;
  shrunk : string option;
}

(* Oracle 4: a crashed-and-recovered run must end with exactly the
   persistent cells of the uninjected baseline. *)
let check_footprint baseline r =
  if r.footprint = baseline.footprint then r
  else
    {
      r with
      violations =
        r.violations
        @ [
            {
              oracle = "stable-footprint";
              detail =
                Printf.sprintf "footprint diverged from baseline: %s (baseline %s)"
                  r.footprint baseline.footprint;
            };
          ];
    }

let coverage runs =
  let hit = Array.make site_count false in
  List.iter (fun r -> List.iter (fun (s, _) -> hit.(s) <- true) r.fired) runs;
  Array.to_list hit
  |> List.mapi (fun i b -> if b then Some i else None)
  |> List.filter_map Fun.id

let total_violations c =
  List.fold_left (fun acc r -> acc + List.length r.violations) 0 c.runs
  + List.length c.baseline.violations

let violating r = r.violations <> []

(* Greedy shrink: drop schedule entries while the violation persists,
   then lower occurrence counts toward 0. *)
let shrink still schedule =
  let rec remove_pass s =
    let rec try_each prefix = function
      | [] -> None
      | x :: rest ->
          let candidate = List.rev_append prefix rest in
          if candidate <> [] && still candidate then Some candidate
          else try_each (x :: prefix) rest
    in
    match try_each [] s with Some s' -> remove_pass s' | None -> s
  in
  let rec occ_pass s =
    let rec try_each prefix = function
      | [] -> None
      | (site, o) :: rest when o > 0 ->
          let candidate = List.rev_append prefix ((site, o - 1) :: rest) in
          if still candidate then Some candidate
          else try_each ((site, o) :: prefix) rest
      | x :: rest -> try_each (x :: prefix) rest
    in
    match try_each [] s with Some s' -> occ_pass s' | None -> s
  in
  occ_pass (remove_pass schedule)

let shrink_first_violation scenario baseline runs =
  match List.find_opt violating runs with
  | None -> None
  | Some bad ->
      let still s =
        violating
          (check_footprint baseline (run_schedule scenario ~seed:bad.seed s))
      in
      let minimal = if still bad.schedule then shrink still bad.schedule else bad.schedule in
      Some (replay_line ~seed:bad.seed minimal)

(* --- parallel fan-out (PR 5, scaling fixed PR 8) ---

   When the campaign context is recording (metrics or tracing on), each
   run executes against its own fresh [Obs] context (so worker domains
   never share a trace buffer or metric slots), and the per-run contexts
   are absorbed into the campaign's context in run-id order.
   [Ctx.absorb] reproduces exactly what sequential execution would have
   recorded - counters sum, each run's events land after the previous
   run's one-second gap - so the merged report and trace are
   byte-identical for every [jobs] value.

   When nothing is recording (the common campaign configuration), a
   per-run context is pure allocation: every guarded [Obs] call is a
   no-op either way.  Runs then share their worker domain's own context
   - one per worker, not one per run - and the merge step disappears. *)

let run_isolated parent scenario ~seed schedule =
  let ctx = Obs.Ctx.create ~like:parent () in
  let r = Obs.with_ctx ctx (fun () -> run_schedule scenario ~seed schedule) in
  (r, ctx)

let run_schedules ~jobs scenario ~baseline ~n plan =
  let parent = Obs.current () in
  let observed =
    Obs.Ctx.metrics_enabled parent || Obs.Ctx.tracing_enabled parent
  in
  let results =
    Par.map ~jobs n (fun i ->
        let seed, schedule = plan i in
        if observed then
          let r, ctx = run_isolated parent scenario ~seed schedule in
          (r, Some ctx)
        else (run_schedule scenario ~seed schedule, None))
  in
  Array.to_list results
  |> List.map (fun (r, ctx) ->
         (match ctx with
         | Some ctx -> Obs.Ctx.absorb ~into:parent ctx
         | None -> ());
         check_footprint baseline r)

let exhaustive ?(jobs = 1) scenario ~seed ~depth =
  if depth < 1 then invalid_arg "Faultsim.exhaustive: depth must be positive";
  if jobs < 1 then invalid_arg "Faultsim.exhaustive: jobs must be positive";
  let baseline = run_schedule scenario ~seed [] in
  (* Depth 1 is complete over dynamic instants: the baseline run tells us
     how often each site fires, and we crash once at every single
     occurrence (the pre-injection trajectory equals the baseline's, so
     the occurrence grid is exact).  Deeper levels chain additional
     first-hit (occurrence 0) failures onto each level-1 instant - full
     occurrence grids would be quadratic in trace length per level. *)
  let level1 =
    List.concat
      (List.init site_count (fun s ->
           List.init baseline.hits.(s) (fun o -> [ (s, o) ])))
  in
  let rec deepen d schedules =
    if d <= 1 then schedules
    else
      deepen (d - 1)
        (List.concat_map
           (fun sched ->
             List.init site_count (fun s -> sched @ [ (s, 0) ]))
           schedules)
  in
  let schedules =
    Array.of_list (List.concat (List.init depth (fun d -> deepen (d + 1) level1)))
  in
  let runs =
    run_schedules ~jobs scenario ~baseline ~n:(Array.length schedules)
      (fun i -> (seed, schedules.(i)))
  in
  {
    scenario = scenario.Scenario.name;
    mode = "exhaustive";
    depth;
    campaign_seed = seed;
    baseline;
    runs;
    covered = coverage runs;
    shrunk = shrink_first_violation scenario baseline runs;
  }

let random_campaign ?(jobs = 1) scenario ~seed ~runs ~max_depth =
  if runs < 1 then invalid_arg "Faultsim.random_campaign: runs must be positive";
  if max_depth < 1 then
    invalid_arg "Faultsim.random_campaign: max_depth must be positive";
  if jobs < 1 then invalid_arg "Faultsim.random_campaign: jobs must be positive";
  let prng = Prng.create ~seed in
  let baseline = run_schedule scenario ~seed [] in
  (* Run [i]'s plan comes from a child PRNG split off the campaign
     generator at index [i]: a pure function of (seed, i), so the plan a
     given run id gets is independent of [jobs] - and nothing is drawn
     sequentially up front, so fan-out starts immediately and the
     campaign never materialises all schedules at once. *)
  let plan i =
    let p = Prng.split prng ~index:i in
    let run_seed = Prng.int_range p ~lo:0 ~hi:(1 lsl 30) in
    let depth = Prng.int_range p ~lo:1 ~hi:max_depth in
    let schedule =
      List.init depth (fun _ ->
          ( Prng.int_range p ~lo:0 ~hi:(site_count - 1),
            Prng.int_range p ~lo:0 ~hi:12 ))
    in
    (run_seed, schedule)
  in
  let results = run_schedules ~jobs scenario ~baseline ~n:runs plan in
  {
    scenario = scenario.Scenario.name;
    mode = "random";
    depth = max_depth;
    campaign_seed = seed;
    baseline;
    runs = results;
    covered = coverage results;
    shrunk = shrink_first_violation scenario baseline results;
  }

let replay scenario ~line =
  match parse_replay line with
  | Error _ as err -> err
  | Ok (seed, schedule) ->
      let baseline = run_schedule scenario ~seed [] in
      let first = check_footprint baseline (run_schedule scenario ~seed schedule) in
      let second = run_schedule scenario ~seed schedule in
      Ok (first, first.digest = second.digest)

(* --- reports --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let run_to_json r =
  Printf.sprintf
    "{\"seed\": %d, \"schedule\": %s, \"fired\": %s, \"outcome\": %s, \
     \"power_failures\": %d, \"digest\": %s, \"hits\": [%s], \
     \"violations\": [%s]}"
    r.seed
    (json_string (schedule_to_string r.schedule))
    (json_string (schedule_to_string r.fired))
    (json_string r.outcome) r.power_failures (json_string r.digest)
    (String.concat ", " (Array.to_list (Array.map string_of_int r.hits)))
    (String.concat ", "
       (List.map
          (fun v ->
            Printf.sprintf "{\"oracle\": %s, \"detail\": %s}"
              (json_string v.oracle) (json_string v.detail))
          r.violations))

(* The report renderer is written against a string sink so campaign-
   and fleet-scale reports can stream straight to an output channel:
   only one run's row is ever in memory, never the whole document. *)
let write_campaign_json ~emit c =
  let add fmt = Printf.ksprintf emit fmt in
  add "{\n";
  add "  \"scenario\": %s,\n" (json_string c.scenario);
  add "  \"mode\": %s,\n" (json_string c.mode);
  add "  \"depth\": %d,\n" c.depth;
  add "  \"campaign_seed\": %d,\n" c.campaign_seed;
  add "  \"sites\": [%s],\n"
    (String.concat ", " (Array.to_list (Array.map json_string sites)));
  add "  \"registered_sites\": %d,\n" site_count;
  add "  \"covered_sites\": [%s],\n"
    (String.concat ", " (List.map string_of_int c.covered));
  add "  \"coverage\": \"%d/%d\",\n" (List.length c.covered) site_count;
  add "  \"baseline\": %s,\n" (run_to_json c.baseline);
  add "  \"runs\": [\n";
  let last = List.length c.runs - 1 in
  List.iteri
    (fun i r -> add "    %s%s\n" (run_to_json r) (if i = last then "" else ","))
    c.runs;
  add "  ],\n";
  add "  \"total_runs\": %d,\n" (List.length c.runs);
  add "  \"total_violations\": %d,\n" (total_violations c);
  add "  \"shrunk\": %s\n"
    (match c.shrunk with None -> "null" | Some line -> json_string line);
  add "}\n"

let output_campaign_json oc c = write_campaign_json ~emit:(output_string oc) c

let campaign_to_json c =
  let buf = Buffer.create 4096 in
  write_campaign_json ~emit:(Buffer.add_string buf) c;
  Buffer.contents buf

let campaign_summary c =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "scenario %s: %d injection sites\n" c.scenario site_count;
  add "baseline: %s, %d violations\n" c.baseline.outcome
    (List.length c.baseline.violations);
  add "%s (depth %d): %d runs, coverage %d/%d, %d violations\n" c.mode c.depth
    (List.length c.runs) (List.length c.covered) site_count
    (total_violations c);
  (match c.shrunk with
  | None -> ()
  | Some line -> add "minimal reproducer: %s\n" line);
  Buffer.contents buf
