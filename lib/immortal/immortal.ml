open Artemis_nvm
module Obs = Artemis_obs.Obs

let m_steps = Obs.counter "immortal_steps"
let m_resets = Obs.counter "immortal_resets"

type t = { nvm : Nvm.t; pc_cell : int Nvm.cell; steps : (unit -> unit) array }

type progress = Ran of int | Done

let create nvm ~region ~name ~steps =
  if Array.length steps = 0 then invalid_arg "Immortal.create: no steps";
  let pc_cell = Nvm.cell nvm ~region ~name:("ic:" ^ name) ~bytes:2 0 in
  { nvm; pc_cell; steps }

let pc t = Nvm.read t.pc_cell
let length t = Array.length t.steps
let fram_bytes _t = 2
let steps t = t.steps
let fresh t = pc t = 0
let completed t = pc t >= Array.length t.steps
let in_progress t = (not (fresh t)) && not (completed t)

(* Each step commits its effects and the pc advance in one transaction:
   a power failure at any point inside the step rolls the whole step back
   (the pc still names it), and once the pc has advanced the step's
   writes are durable - a crash can never observe a half-applied step or
   re-execute a completed one.  Step bodies must write through
   [Nvm.write_join] for their updates to join the step transaction. *)
let run_step t =
  let i = pc t in
  if i >= Array.length t.steps then Done
  else begin
    Nvm.begin_tx t.nvm;
    (try
       t.steps.(i) ();
       Nvm.tx_write t.pc_cell (i + 1);
       Nvm.commit_tx t.nvm
     with e ->
       if Nvm.in_tx t.nvm then Nvm.abort_tx t.nvm;
       raise e);
    Obs.Ctx.incr (Nvm.obs t.nvm) m_steps;
    Ran i
  end

let rec run_to_completion t =
  match run_step t with Done -> () | Ran _ -> run_to_completion t

let reset t =
  Obs.Ctx.incr (Nvm.obs t.nvm) m_resets;
  Nvm.write t.pc_cell 0
