(** Local-continuation micro-library, the OCaml stand-in for the
    ImmortalThreads C macros the paper generates monitors with
    (Section 4.2.3).

    A thread is a fixed sequence of steps with a persistent program
    counter: after a power failure, execution resumes from the first step
    that had not completed - no completed step ever re-runs.  Step bodies
    must confine their effects to persistent cells (or be idempotent), as
    on the real system, where every monitor variable lives in FRAM.

    The ARTEMIS runtime runs its [callMonitor] sequence as such a thread;
    [monitorFinalize] at boot (Figure 8, line 16) is simply "run the
    remaining steps". *)

open Artemis_nvm

type t

val create :
  Nvm.t -> region:Nvm.region -> name:string -> steps:(unit -> unit) array -> t
(** Allocates a 2-byte persistent program counter named ["ic:<name>"].
    @raise Invalid_argument on an empty step array. *)

val pc : t -> int
val length : t -> int

val fram_bytes : t -> int
(** Persistent bytes the thread itself occupies (its 2-byte program
    counter) - the backend-independent monitor-call overhead the
    runtime-matrix footprint accounting separates from each backend's
    own cells. *)

val steps : t -> (unit -> unit) array
(** The thread's step bodies, in program order - the access-recording
    surface for the static WAR-hazard analysis
    ({!Artemis_consistency.War.analyze_steps}): each step runs inside
    its own transaction, so a step-local read-then-plain-write is a
    re-execution hazard exactly as in a task body. *)

val fresh : t -> bool
(** No step has run since the last {!reset} (pc = 0). *)

val completed : t -> bool
val in_progress : t -> bool
(** Started but not completed: exactly the state [monitorFinalize] must
    resume from after a reboot. *)

type progress = Ran of int  (** index of the step just executed *) | Done

val run_step : t -> progress
(** Execute the current step and persist the advanced counter in one NVM
    transaction: a power failure anywhere inside the step rolls its
    effects back (so the re-run starts from the pre-step state), and a
    committed step never re-runs.  Step bodies should write persistent
    cells via [Nvm.write_join] so their updates join the step
    transaction; plain [Nvm.write]s bypass it and must be idempotent.
    @raise Invalid_argument if a transaction is already open on the
    store (steps may not run inside a task transaction). *)

val run_to_completion : t -> unit
(** Run every remaining step. *)

val reset : t -> unit
(** Rewind to step 0 for the next invocation. *)
