(** Power-failure-resilient live property adaptation (PR 4).

    The paper's title claim — {e adaptable} runtime monitoring — is the
    ability to change the deployed property suite at runtime without
    reprogramming the device (Section 7, Table 3's "runtime adaptation"
    row).  This module implements the device half as a two-phase,
    crash-atomic protocol over dedicated NVM {e staging} cells:

    + {b stage}: the update's wire image is written into the staging
      buffer, then a pending marker (update id, target generation) arms
      the apply path — two single-cell writes whose partial states are
      all recoverable;
    + {b validate}: the staged bytes are decoded and checked against the
      running application (spec parse + {!Artemis_spec.Validate} +
      {!Artemis_spec.Consistency} errors, or IL parse + typecheck +
      watched-task check).  A failing update is {e rejected}, never
      half-deployed;
    + {b build}: replacement and added monitors are compiled through the
      existing {!Artemis_fsm.Compile} path and allocated under a
      ["g<N>/"] cell prefix, so both generations' cells coexist; cell
      allocation fires no injection probe, making the build
      injection-atomic, and the built suite is cached per generation so a
      crashed apply retries against the same cells;
    + {b migrate}: for each replaced monitor with a compatible layout,
      [persistent] variables are copied into the new cells
      ({!Artemis_monitor.Monitor.migrate_persistent}); incompatible
      replacements fall back to hard-reset semantics.  Migration writes
      only touch the replacement's cells, so re-running it is idempotent;
    + {b flip}: one atomic write of the control cell advances the
      generation, clears the pending marker and appends to the applied-id
      list — a power failure can never observe a torn suite or an update
      that is both pending and applied.  The caller may join bookkeeping
      writes (the runtime's journal entry) to the flip transaction.

    Radio delivery is costed by the runtime through the
    [External_wireless] model using {!wire_bytes}. *)

module Nvm = Artemis_nvm.Nvm
module Monitor = Artemis_monitor.Monitor
module Suite = Artemis_monitor.Suite
module Task = Artemis_task.Task

val injection_sites : string list
(** Crash-window labels of the protocol, appended after the runtime's own
    sites in the fault-injection numbering. *)

(** {1 Updates} *)

type payload =
  | Spec_source of string  (** a property-specification block (Figure 5) *)
  | Machine_source of string  (** raw intermediate-language machines *)

type update = {
  id : int;  (** unique per deployment; the exactly-once key *)
  remove : string list;  (** deployed monitor names to retire *)
  payload : payload option;  (** new or replacement machines *)
}

val spec_update : id:int -> ?remove:string list -> string -> update
val machine_update : id:int -> ?remove:string list -> string -> update
val removal_update : id:int -> string list -> update

val serialize : update -> string
(** The wire image staged into NVM (and costed over the radio). *)

val deserialize : string -> (update, string) result
val wire_bytes : update -> int

val parse_script : string -> ((int * update) list, string) result
(** Parse an adaptation script (the [artemis_sim --adapt] input): a JSON
    array of [{"at": K, "id": N?, "remove": [..]?, "spec": "..."? |
    "machines": "..."?}] entries, returning [(iteration, update)] pairs.
    [id] defaults to the 1-based entry position. *)

(** {1 The device-side protocol} *)

type t
(** The adaptation manager: owns the staging cells ([adapt.buffer],
    [adapt.control] in {!Nvm.region.Staging}) and the per-generation
    suite cache. *)

type migration = {
  monitor : string;
  migrated : string list;  (** persistent variables carried over *)
  reset : bool;  (** incompatible layout: hard-reset fallback *)
}

type applied = { id : int; generation : int; migrations : migration list }

type outcome =
  | Idle  (** nothing staged *)
  | Applied of applied
  | Rejected of { id : int; reason : string }

val create :
  ?engine:Monitor.engine ->
  ?admission:(Artemis_fsm.Ast.machine list -> (unit, string) result) ->
  Nvm.t ->
  app:Task.app ->
  Suite.t ->
  t
(** [create nvm ~app suite] installs [suite] as generation 0 and
    allocates the staging cells.  [engine] (default [Compiled]) is used
    for monitors built by future updates.  [admission] (default: accept
    everything) runs at the end of {!validate} over the update's parsed
    machines; the runtime installs the PR 9 energy-admissibility check
    here, so an over-budget update is rejected with its
    ["energy-inadmissible: ..."] reason on the normal rejection path. *)

val generation : t -> int
val active : t -> Suite.t
(** The committed generation's suite. *)

val applied_ids : t -> int list
(** Ids of applied updates, oldest first (the exactly-once oracle reads
    this). *)

val already_applied : t -> int -> bool
val pending_id : t -> int option
(** The staged-but-uncommitted update, if any (crash recovery re-applies
    it before new deliveries are staged). *)

val stage : ?probe:(string -> unit) -> t -> update -> int
(** Write the update's wire image into the staging buffer and arm the
    pending marker.  Returns the staged byte count.  Restaging over an
    unapplied pending update overwrites it (last-writer-wins, as for an
    OTA image). *)

val apply :
  ?probe:(string -> unit) -> ?commit_extra:(applied -> unit) -> t -> outcome
(** Run validate/build/migrate/flip on the pending update, if any.
    [commit_extra] runs inside the flip transaction (use
    {!Nvm.tx_write}) so caller bookkeeping commits atomically with the
    generation flip.  Safe to call again after a power failure at any
    point: every partial state either retries to the same outcome or was
    already committed (in which case the pending marker is gone and the
    call returns [Idle]). *)

(** {1 Introspection (oracles, experiments)} *)

type built = {
  suite : Suite.t;
  replaced : (Monitor.t * Monitor.t) list;
  added : string list;
  removed : string list;
}

val deployment : t -> int -> built option
(** The cached deployment of a generation, if built. *)
