open Artemis_util
open Artemis_fsm
module Nvm = Artemis_nvm.Nvm
module Monitor = Artemis_monitor.Monitor
module Suite = Artemis_monitor.Suite
module Task = Artemis_task.Task
module Spec = Artemis_spec
module To_fsm = Artemis_transform.To_fsm
module Obs = Artemis_obs.Obs

let m_staged = Obs.counter "adapt_staged"
let m_applied = Obs.counter "adapt_applied"
let m_rejected = Obs.counter "adapt_rejected"

(* Appended to [Runtime.injection_sites] (the engine numbers the NVM
   sites, then the runtime's, then these — appending keeps the historic
   numbering 0-11 stable).  Each label marks one crash window of the
   update protocol; the depth-1 campaign drives a power failure through
   every one of them and the oracles check the update still applies
   exactly once. *)
let injection_sites =
  [
    "rt.adapt.stage.before";
    "rt.adapt.stage.after";
    "rt.adapt.validate.after";
    "rt.adapt.migrate.before";
    "rt.adapt.migrate.after";
    "rt.adapt.flip.before";
    "rt.adapt.flip.after";
    "rt.adapt.clear.after";
  ]

(* --- updates and their wire form --- *)

type payload =
  | Spec_source of string
  | Machine_source of string

type update = { id : int; remove : string list; payload : payload option }

let spec_update ~id ?(remove = []) src =
  { id; remove; payload = Some (Spec_source src) }

let machine_update ~id ?(remove = []) src =
  { id; remove; payload = Some (Machine_source src) }

let removal_update ~id remove = { id; remove; payload = None }

(* The staged image is a self-describing text blob: a header (version,
   id, removals, payload kind), a "---" separator, then the payload
   source verbatim.  Its length is what the radio delivery costs. *)
let marker = "\n---\n"

let serialize u =
  let b = Buffer.create 128 in
  Buffer.add_string b "artemis-update/1\n";
  Buffer.add_string b (Printf.sprintf "id: %d\n" u.id);
  List.iter (fun r -> Buffer.add_string b (Printf.sprintf "remove: %s\n" r)) u.remove;
  (match u.payload with
  | None -> Buffer.add_string b "payload: none"
  | Some (Spec_source _) -> Buffer.add_string b "payload: spec"
  | Some (Machine_source _) -> Buffer.add_string b "payload: machines");
  Buffer.add_string b marker;
  (match u.payload with
  | None -> ()
  | Some (Spec_source s) | Some (Machine_source s) -> Buffer.add_string b s);
  Buffer.contents b

let wire_bytes u = String.length (serialize u)

let find_marker wire =
  let n = String.length wire and m = String.length marker in
  let rec go i =
    if i + m > n then None
    else if String.sub wire i m = marker then Some i
    else go (i + 1)
  in
  go 0

let deserialize wire =
  match find_marker wire with
  | None -> Error "missing payload separator"
  | Some i -> (
      let header = String.sub wire 0 i in
      let body =
        String.sub wire (i + String.length marker)
          (String.length wire - i - String.length marker)
      in
      match String.split_on_char '\n' header with
      | version :: fields when String.equal version "artemis-update/1" -> (
          let id = ref None and remove = ref [] and kind = ref None in
          let bad = ref None in
          List.iter
            (fun line ->
              match String.index_opt line ':' with
              | None -> if !bad = None then bad := Some line
              | Some j -> (
                  let key = String.sub line 0 j in
                  let value =
                    String.trim
                      (String.sub line (j + 1) (String.length line - j - 1))
                  in
                  match key with
                  | "id" -> id := int_of_string_opt value
                  | "remove" -> remove := value :: !remove
                  | "payload" -> kind := Some value
                  | _ -> if !bad = None then bad := Some line))
            fields;
          match (!bad, !id, !kind) with
          | Some line, _, _ -> Error (Printf.sprintf "bad header line %S" line)
          | None, None, _ -> Error "missing or malformed id"
          | None, Some id, Some "none" ->
              Ok { id; remove = List.rev !remove; payload = None }
          | None, Some id, Some "spec" ->
              Ok { id; remove = List.rev !remove; payload = Some (Spec_source body) }
          | None, Some id, Some "machines" ->
              Ok
                { id; remove = List.rev !remove; payload = Some (Machine_source body) }
          | None, Some _, (Some _ | None) -> Error "missing or unknown payload kind")
      | _ -> Error "unknown wire version")

(* --- adaptation scripts (the artemis_sim --adapt input) --- *)

let script_item index item =
  let module J = Json in
  let str_field name =
    match J.member name item with
    | None -> Ok None
    | Some j -> (
        match J.to_str j with
        | Some s -> Ok (Some s)
        | None -> Error (Printf.sprintf "entry %d: %S must be a string" index name))
  in
  match J.member "at" item with
  | None -> Error (Printf.sprintf "entry %d: missing \"at\" iteration" index)
  | Some at_j -> (
      match J.to_num at_j with
      | None -> Error (Printf.sprintf "entry %d: \"at\" must be a number" index)
      | Some at -> (
          let id =
            match J.member "id" item with
            | Some j -> (
                match J.to_num j with
                | Some n -> int_of_float n
                | None -> index + 1)
            | None -> index + 1
          in
          let remove =
            match J.member "remove" item with
            | None -> Ok []
            | Some j -> (
                match J.to_arr j with
                | None ->
                    Error
                      (Printf.sprintf "entry %d: \"remove\" must be an array" index)
                | Some items -> (
                    let names = List.filter_map J.to_str items in
                    if List.length names = List.length items then Ok names
                    else
                      Error
                        (Printf.sprintf
                           "entry %d: \"remove\" must contain strings" index)))
          in
          match (remove, str_field "spec", str_field "machines") with
          | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
          | Ok _, Ok (Some _), Ok (Some _) ->
              Error
                (Printf.sprintf "entry %d: give \"spec\" or \"machines\", not both"
                   index)
          | Ok remove, Ok spec, Ok machines ->
              let payload =
                match (spec, machines) with
                | Some s, None -> Some (Spec_source s)
                | None, Some s -> Some (Machine_source s)
                | None, None -> None
                | Some _, Some _ -> assert false
              in
              Ok (int_of_float at, { id; remove; payload })))

let parse_script src =
  match Json.parse src with
  | Error e -> Error ("adapt script: " ^ e)
  | Ok (Json.Arr items) ->
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match script_item i item with
            | Error e -> Error ("adapt script: " ^ e)
            | Ok entry -> go (i + 1) (entry :: acc) rest)
      in
      go 0 [] items
  | Ok _ -> Error "adapt script: expected a JSON array of updates"

(* --- the on-device protocol state --- *)

type pending = { pending_id : int; target : int }

(* The whole commit state lives in ONE cell so the generation flip — the
   only step that changes which suite is active — is a single atomic FRAM
   write: it advances [generation], clears [pending] and extends
   [applied] together.  A power failure can therefore never observe a
   torn suite (half old, half new) or an update that is both pending and
   applied. *)
type control = { generation : int; pending : pending option; applied : int list }

type migration = { monitor : string; migrated : string list; reset : bool }

type built = {
  suite : Suite.t;
  replaced : (Monitor.t * Monitor.t) list;  (* (retiring, replacement) *)
  added : string list;
  removed : string list;
}

type t = {
  nvm : Nvm.t;
  app : Task.app;
  engine : Monitor.engine;
  buffer : string option Nvm.cell;
  control : control Nvm.cell;
  (* Host-side cache, generation -> deployment.  The OCaml heap survives
     simulated power failures (only Ram cells and the open transaction
     reset), so a crashed apply retries against the same built suite —
     which is also what makes the retry safe: building twice would
     re-allocate the generation's cells and trip duplicate detection. *)
  suites : (int, built) Hashtbl.t;
  (* Extra validate-time gate over the update's parsed machines - the
     runtime installs the energy-admissibility check here (PR 9), so an
     over-budget update is refused before it can be staged into a
     generation. *)
  admission : Ast.machine list -> (unit, string) result;
}

type applied = { id : int; generation : int; migrations : migration list }

type outcome =
  | Idle
  | Applied of applied
  | Rejected of { id : int; reason : string }

let create ?(engine = Monitor.Compiled) ?(admission = fun _ -> Ok ()) nvm ~app
    suite =
  let buffer =
    Nvm.cell nvm ~region:Staging ~name:"adapt.buffer" ~bytes:512 None
  in
  let control =
    Nvm.cell nvm ~region:Staging ~name:"adapt.control" ~bytes:16
      { generation = 0; pending = None; applied = [] }
  in
  let suites = Hashtbl.create 4 in
  Hashtbl.replace suites 0 { suite; replaced = []; added = []; removed = [] };
  { nvm; app; engine; buffer; control; suites; admission }

let generation t = (Nvm.read t.control).generation
let applied_ids t = List.rev (Nvm.read t.control).applied
let already_applied t id = List.mem id (Nvm.read t.control).applied
let pending_id t =
  match (Nvm.read t.control).pending with
  | Some p -> Some p.pending_id
  | None -> None

let active t = (Hashtbl.find t.suites (generation t)).suite

let stage ?(probe = fun _ -> ()) t update =
  probe "rt.adapt.stage.before";
  let wire = serialize update in
  (* Two single-cell writes, bytes first: a crash between them leaves an
     orphaned buffer and no pending marker — nothing to recover, the next
     stage simply overwrites it.  The pending marker is what arms the
     apply path. *)
  Nvm.write t.buffer (Some wire);
  let c = Nvm.read t.control in
  Nvm.write t.control
    { c with pending = Some { pending_id = update.id; target = c.generation + 1 } };
  Obs.Ctx.incr (Nvm.obs t.nvm) m_staged;
  probe "rt.adapt.stage.after";
  String.length wire

(* --- validation (the device refuses an update rather than deploying a
   broken suite) --- *)

let validate_structure t update =
  let current = active t in
  let missing =
    List.filter (fun name -> Suite.find current name = None) update.remove
  in
  if missing <> [] then
    Error
      (Printf.sprintf "remove: no deployed monitor named %s"
         (String.concat ", " missing))
  else if update.remove = [] && update.payload = None then
    Error "empty update (no removals, no payload)"
  else
    match update.payload with
    | None -> Ok []
    | Some (Spec_source src) -> (
        match Spec.Parser.parse src with
        | Error e -> Error ("spec: " ^ e)
        | Ok spec -> (
            match Spec.Validate.check t.app spec with
            | Error issues -> Error (Spec.Validate.issues_to_string issues)
            | Ok () -> (
                match Spec.Consistency.(errors (check t.app spec)) with
                | [] -> Ok (To_fsm.spec spec)
                | errs -> Error (Spec.Consistency.to_string errs))))
    | Some (Machine_source src) -> (
        match Parser.parse src with
        | Error e -> Error ("machines: " ^ e)
        | Ok [] -> Error "machines: empty payload"
        | Ok machines -> (
            let tasks = Task.task_names t.app in
            let check_machine (m : Ast.machine) =
              let compiled = Compile.compile m (* typechecks; raises *) in
              match
                List.find_opt
                  (fun task -> not (List.mem task tasks))
                  (Compile.watched_tasks compiled)
              with
              | Some task ->
                  failwith
                    (Printf.sprintf "machine %S watches unknown task %S"
                       m.Ast.machine_name task)
              | None -> ()
            in
            match List.iter check_machine machines with
            | () -> Ok machines
            | exception Failure msg -> Error msg))

(* Structural validation first, then the installed admission gate (the
   runtime's energy-admissibility analysis) over the update's parsed
   machines.  A pure removal validates against the empty machine list. *)
let validate t update =
  match validate_structure t update with
  | Error _ as e -> e
  | Ok machines -> (
      match t.admission machines with
      | Ok () -> Ok machines
      | Error reason -> Error reason)

(* --- building the next generation --- *)

(* Cell allocation never fires an injection probe, so the whole build is
   injection-atomic; the only durable effects are fresh cells at their
   initial values, inert until the flip.  Replacement and added monitors
   live under a "g<N>/" prefix so both generations' cells coexist. *)
let build t ~target update machines =
  match Hashtbl.find_opt t.suites target with
  | Some b -> b
  | None ->
      let current = (Hashtbl.find t.suites (target - 1)).suite in
      let prefix name = Printf.sprintf "g%d/%s" target name in
      let fresh_monitor (m : Ast.machine) =
        Monitor.create ~engine:t.engine ~cell_prefix:(prefix m.Ast.machine_name)
          t.nvm m
      in
      let kept =
        List.filter
          (fun m -> not (List.mem (Monitor.name m) update.remove))
          (Suite.monitors current)
      in
      let replaced = ref [] in
      let survivors =
        List.map
          (fun m ->
            match
              List.find_opt
                (fun (mach : Ast.machine) ->
                  String.equal mach.Ast.machine_name (Monitor.name m))
                machines
            with
            | None -> m
            | Some mach ->
                let fresh = fresh_monitor mach in
                replaced := (m, fresh) :: !replaced;
                fresh)
          kept
      in
      let added = ref [] in
      let additions =
        List.filter_map
          (fun (mach : Ast.machine) ->
            if
              List.exists
                (fun m -> String.equal (Monitor.name m) mach.Ast.machine_name)
                kept
            then None
            else begin
              added := mach.Ast.machine_name :: !added;
              Some (fresh_monitor mach)
            end)
          machines
      in
      let b =
        {
          suite = Suite.of_monitors (survivors @ additions);
          replaced = List.rev !replaced;
          added = List.rev !added;
          removed = update.remove;
        }
      in
      Hashtbl.replace t.suites target b;
      b

let reject t (c : control) id reason =
  (* Both writes are individually atomic; clearing [pending] first means
     a crash between them can only leave an orphaned buffer, which the
     next stage overwrites. *)
  Nvm.write t.control { c with pending = None };
  Nvm.write t.buffer None;
  Obs.Ctx.incr (Nvm.obs t.nvm) m_rejected;
  Rejected { id; reason }

let apply ?(probe = fun _ -> ()) ?(commit_extra = fun (_ : applied) -> ()) t =
  let c = Nvm.read t.control in
  match c.pending with
  | None -> Idle
  | Some { pending_id = id; target } -> (
      match Nvm.read t.buffer with
      | None -> reject t c id "staging buffer empty (torn stage)"
      | Some wire -> (
          match deserialize wire with
          | Error reason -> reject t c id ("undecodable update: " ^ reason)
          | Ok update when update.id <> id ->
              reject t c id "staged bytes do not match the pending id"
          | Ok update -> (
              match validate t update with
              | Error reason ->
                  probe "rt.adapt.validate.after";
                  reject t c id reason
              | Ok machines ->
                  probe "rt.adapt.validate.after";
                  let b = build t ~target update machines in
                  (* Migration writes only touch the replacement's cells
                     (the retiring monitor is read-only here), so re-running
                     it after a mid-migration crash is idempotent. *)
                  probe "rt.adapt.migrate.before";
                  let migrations =
                    List.map
                      (fun (old_m, new_m) ->
                        if Monitor.compatible_layout ~from:old_m new_m then
                          {
                            monitor = Monitor.name new_m;
                            migrated = Monitor.migrate_persistent ~from:old_m new_m;
                            reset = false;
                          }
                        else
                          { monitor = Monitor.name new_m; migrated = []; reset = true })
                      b.replaced
                  in
                  probe "rt.adapt.migrate.after";
                  let a = { id; generation = target; migrations } in
                  (* Commit: the control flip and any caller bookkeeping
                     (the runtime's journal entry) join one NVM transaction,
                     so "the suite changed" and "the journal says so" are a
                     single atomic step. *)
                  probe "rt.adapt.flip.before";
                  Nvm.begin_tx t.nvm;
                  Nvm.tx_write t.control
                    { generation = target; pending = None; applied = id :: c.applied };
                  commit_extra a;
                  Nvm.commit_tx t.nvm;
                  probe "rt.adapt.flip.after";
                  Nvm.write t.buffer None;
                  probe "rt.adapt.clear.after";
                  Obs.Ctx.incr (Nvm.obs t.nvm) m_applied;
                  Applied a)))

let deployment t gen = Hashtbl.find_opt t.suites gen
