open Artemis_util
module Nvm = Artemis_nvm.Nvm
module Device = Artemis_device.Device
module Report = Artemis_device.Report
module Event = Artemis_trace.Event
module Stats = Artemis_trace.Stats
module Task = Artemis_task.Task

type expiration_action = Restart_from of string | Skip_segment

type annotation = {
  data_from : string;
  within : Time.t;
  on_expire : expiration_action;
}

type segment = {
  name : string;
  duration : Time.t;
  power : Energy.power;
  body : Task.context -> unit;
  snapshot_bytes : int;
  freshness : annotation option;
}

let segment ~name ~duration ~power ?(body = fun _ -> ()) ?(snapshot_bytes = 64)
    ?freshness () =
  if String.length name = 0 then invalid_arg "Checkpoint.segment: empty name";
  if Time.is_negative duration then
    invalid_arg "Checkpoint.segment: negative duration";
  if snapshot_bytes < 0 then
    invalid_arg "Checkpoint.segment: negative snapshot size";
  { name; duration; power; body; snapshot_bytes; freshness }

type program = { program_name : string; segments : segment list }

let index_of segments name =
  let rec go i = function
    | [] -> None
    | s :: rest -> if String.equal s.name name then Some i else go (i + 1) rest
  in
  go 0 segments

(* The WAR-analysis surface (PR 7): segment bodies are the checkpoint
   runtime's unit of re-execution - a power failure rolls back to the
   last checkpoint and re-runs the segment, so a segment-local
   read-then-plain-write is non-idempotent exactly like a task's.
   Deduplicated by first appearance like [Task.bodies] and [Ink.bodies]
   (PR 10): [validate] rejects duplicate names, but the analysis surface
   must not depend on validation having run - the pre-fix version
   analyzed (and double-reported) repeated segments. *)
let bodies p =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun s ->
      if Hashtbl.mem seen s.name then None
      else begin
        Hashtbl.add seen s.name ();
        Some (s.name, s.body)
      end)
    p.segments

let validate p =
  let ( let* ) r f = Result.bind r f in
  let* () = if p.segments = [] then Error "program has no segments" else Ok () in
  let names = List.map (fun s -> s.name) p.segments in
  let* () =
    if List.length (List.sort_uniq String.compare names) = List.length names
    then Ok ()
    else Error "segment names must be unique"
  in
  List.fold_left
    (fun acc (i, s) ->
      let* () = acc in
      match s.freshness with
      | None -> Ok ()
      | Some { data_from; on_expire; _ } -> (
          let* () =
            match index_of p.segments data_from with
            | Some j when j < i -> Ok ()
            | Some _ ->
                Error
                  (Printf.sprintf
                     "segment %S: freshness producer %S does not precede it"
                     s.name data_from)
            | None ->
                Error
                  (Printf.sprintf "segment %S: unknown freshness producer %S"
                     s.name data_from)
          in
          match on_expire with
          | Skip_segment -> Ok ()
          | Restart_from target -> (
              match index_of p.segments target with
              | Some j when j <= i -> Ok ()
              | Some _ ->
                  Error
                    (Printf.sprintf
                       "segment %S: Restart_from %S jumps forward" s.name target)
              | None ->
                  Error
                    (Printf.sprintf "segment %S: unknown restart target %S"
                       s.name target))))
    (Ok ())
    (List.mapi (fun i s -> (i, s)) p.segments)

type config = {
  checkpoint_cycles : int;
  restore_cycles : int;
  mcu_power : Energy.power;
  mcu_frequency_hz : int;
  max_loop_iterations : int;
  seed : int;
}

let default_config =
  {
    checkpoint_cycles = 900;
    restore_cycles = 600;
    mcu_power = Energy.mw 1.2;
    mcu_frequency_hz = 1_000_000;
    max_loop_iterations = 200_000;
    seed = 42;
  }

type state = {
  device : Device.t;
  segments : segment array;
  config : config;
  (* persistent: index of the next segment to run = the checkpoint *)
  position : int Nvm.cell;
  (* persistent completion timestamps, one per producing segment *)
  completed_at : (string * Time.t option Nvm.cell) list;
  (* volatile marker: true while running between checkpoints; reset by a
     power failure, which is how the runtime knows it must restore *)
  live : bool Nvm.cell;
  prng : Prng.t;
  mutable iterations : int;
}

let cycles_to_time st cycles =
  Time.of_us (cycles * 1_000_000 / st.config.mcu_frequency_hz)

let consume_runtime st ~cycles =
  Device.consume st.device Device.Runtime_work ~power:st.config.mcu_power
    ~duration:(cycles_to_time st cycles)
    ()

let make_state ~config device p =
  (match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Checkpoint.run: invalid program: " ^ msg));
  let nvm = Device.nvm device in
  let segments = Array.of_list p.segments in
  let position = Nvm.cell nvm ~region:Runtime ~name:"cp.position" ~bytes:2 0 in
  let completed_at =
    List.map
      (fun s ->
        ( s.name,
          Nvm.cell nvm ~region:Runtime ~name:("cp.done." ^ s.name) ~bytes:9 None ))
      p.segments
  in
  let live =
    Nvm.cell nvm ~region:Runtime ~kind:Artemis_nvm.Nvm.Ram ~name:"cp.live" ~bytes:1
      false
  in
  (* the double-buffered snapshot area, sized by the largest segment *)
  let snapshot =
    2 * Array.fold_left (fun acc s -> Stdlib.max acc s.snapshot_bytes) 0 segments
  in
  ignore (Nvm.cell nvm ~region:Runtime ~name:"cp.snapshot" ~bytes:snapshot ());
  {
    device;
    segments;
    config;
    position;
    completed_at;
    live;
    prng = Prng.create ~seed:config.seed;
    iterations = 0;
  }

let expired st (s : segment) =
  match s.freshness with
  | None -> None
  | Some ({ data_from; within; _ } as annotation) -> (
      match Nvm.read (List.assoc data_from st.completed_at) with
      | None -> None  (* producer not run yet this pass: nothing to expire *)
      | Some finished ->
          if Time.(Time.sub (Device.now st.device) finished > within) then
            Some annotation
          else None)

let run ?(config = default_config) device p =
  let st = make_state ~config device p in
  Device.record device Event.Boot;
  let rec loop () =
    st.iterations <- st.iterations + 1;
    if st.iterations > config.max_loop_iterations then begin
      let reason = "iteration limit (no progress)" in
      Device.record device (Event.Horizon_reached { reason });
      Report.stats device ~outcome:(Stats.Did_not_finish reason)
    end
    else if Device.horizon_exceeded device then begin
      let reason = "simulation time horizon" in
      Device.record device (Event.Horizon_reached { reason });
      Report.stats device ~outcome:(Stats.Did_not_finish reason)
    end
    else begin
      let i = Nvm.read st.position in
      if i >= Array.length st.segments then begin
        Device.record device Event.App_completed;
        Report.stats device ~outcome:Stats.Completed
      end
      else begin
        let s = st.segments.(i) in
        (* a cold entry (after boot or failure) pays the restore cost *)
        (if not (Nvm.read st.live) then
           match consume_runtime st ~cycles:config.restore_cycles with
           | Device.Completed -> Nvm.write st.live true
           | Device.Interrupted | Device.Starved -> ());
        if not (Nvm.read st.live) then loop ()
        else begin
          match expired st s with
          | Some { on_expire; data_from; _ } -> (
              Device.record device
                (Event.Runtime_action
                   {
                     action =
                       (match on_expire with
                       | Restart_from target -> "restartFrom " ^ target
                       | Skip_segment -> "skipSegment");
                     task = s.name;
                   });
              match on_expire with
              | Restart_from target ->
                  let j = Option.get (index_of p.segments target) in
                  Device.record device
                    (Event.Path_restarted
                       { path = 1; reason = "stale data from " ^ data_from });
                  Nvm.write st.position j;
                  loop ()
              | Skip_segment ->
                  Nvm.write st.position (i + 1);
                  loop ())
          | None -> (
              Device.record device
                (Event.Task_started { task = s.name; attempt = 1 });
              let nvm = Device.nvm device in
              Nvm.begin_tx nvm;
              match
                Device.consume device Device.App ~during:s.name ~power:s.power
                  ~duration:s.duration ()
              with
              | Device.Interrupted | Device.Starved ->
                  (* rolled back to the checkpoint; [live] was reset *)
                  loop ()
              | Device.Completed -> (
                  s.body { Task.nvm; now = Device.now device; prng = st.prng };
                  Nvm.tx_write
                    (List.assoc s.name st.completed_at)
                    (Some (Device.now device));
                  (* the segment's data and its checkpoint commit
                     atomically (double-buffered snapshot): a failure
                     during the checkpoint discards the data too, so
                     re-execution cannot duplicate effects *)
                  match consume_runtime st ~cycles:config.checkpoint_cycles with
                  | Device.Completed ->
                      Nvm.tx_write st.position (i + 1);
                      Nvm.commit_tx nvm;
                      Device.record device (Event.Task_completed { task = s.name });
                      loop ()
                  | Device.Interrupted | Device.Starved -> loop ()))
        end
      end
    end
  in
  loop ()

let runtime_fram_bytes device =
  Nvm.footprint (Device.nvm device) ~kind:Artemis_nvm.Nvm.Fram
    ~region:Artemis_nvm.Nvm.Runtime

(* --- the unified-backend adapter (PR 10) ---

   Runs ARTEMIS [Task.app] tasks under the TICS/checkpoint commit
   protocol inside the shared runtime: a cold entry (boot or power
   failure) pays the restore before any task work, and every commit
   pays the double-buffered snapshot cost inside the task transaction,
   so the data and its checkpoint become durable atomically. *)
module Backend_impl : Artemis_backend.Backend.S = struct
  module Backend = Artemis_backend.Backend

  let name = "checkpoint"

  let description =
    "TICS-style checkpointing (restore on cold entry, snapshot on commit)"

  let injection_sites = []
  let bodies = Task.bodies

  let setup ~probe device _app =
    ignore probe;
    let config = default_config in
    let nvm = Device.nvm device in
    let live =
      Nvm.cell nvm ~region:Runtime ~kind:Artemis_nvm.Nvm.Ram ~name:"cpb.live"
        ~bytes:1 false
    in
    (* the double-buffered snapshot area (fixed: the shared runtime's
       cursor+event state, not per-segment payloads) *)
    let snapshot_bytes = 128 in
    ignore (Nvm.cell nvm ~region:Runtime ~name:"cpb.snapshot" ~bytes:snapshot_bytes ());
    let consume_cycles cycles =
      Device.consume device Device.Runtime_work ~power:config.mcu_power
        ~duration:(Time.of_us (cycles * 1_000_000 / config.mcu_frequency_hz))
        ()
    in
    {
      Backend.recover = (fun () -> ());
      execute =
        (fun ~task ~context ~commit ->
          (* a cold entry (after boot or failure) pays the restore cost *)
          (if not (Nvm.read live) then
             match consume_cycles config.restore_cycles with
             | Device.Completed -> Nvm.write live true
             | Device.Interrupted | Device.Starved -> ());
          if not (Nvm.read live) then Backend.Interrupted
          else begin
            Nvm.begin_tx nvm;
            match
              Device.consume device Device.App ~during:task.Task.name
                ~power:task.Task.power ~duration:task.Task.duration ()
            with
            | Device.Interrupted | Device.Starved -> Backend.Interrupted
            | Device.Completed -> (
                task.Task.body (context ());
                commit ();
                (* the task's data and its checkpoint commit atomically:
                   a failure during the snapshot discards the data too *)
                match consume_cycles config.checkpoint_cycles with
                | Device.Completed ->
                    Nvm.commit_tx nvm;
                    Backend.Committed
                | Device.Interrupted | Device.Starved -> Backend.Interrupted)
          end);
      fram_bytes = (fun () -> snapshot_bytes);
    }
end

let backend : Artemis_backend.Backend.b = (module Backend_impl)
