(** TICS-style checkpoint-based intermittent runtime (the other system
    family of Section 2 and Table 3).

    Checkpointing systems snapshot volatile state at programmer-defined
    points and resume from the last snapshot after a power failure; TICS
    additionally enforces time consistency through source-code annotations
    that bound the age of the data a code region consumes, running a
    programmer-specified handler on expiration.

    The simulated model: a {e program} is a sequence of {e segments}
    (code between checkpoints).  Completing a segment takes a checkpoint
    (with a configurable cycle cost and a declared snapshot size); a power
    failure rolls execution back to the last checkpoint.  A segment may
    carry a {e freshness annotation}: when it is about to (re-)execute and
    the data produced by an earlier segment is older than the window, the
    annotation's handler runs - restart from a named segment, or skip the
    current one (the two reactions TICS's expiration code typically
    implements).  Like TICS - and unlike ARTEMIS - there is no bounded-
    attempt construct, so a freshness window shorter than the charging
    delay loops forever.

    A segment's data effects and its checkpoint commit atomically (the
    double-buffered snapshot commit real checkpointing systems use to
    close the WAR window): a power failure anywhere between the segment's
    start and its checkpoint completion discards both, so re-execution
    never duplicates effects - property-tested under random failure
    injection. *)

open Artemis_util
open Artemis_device
open Artemis_task

type expiration_action =
  | Restart_from of string  (** jump back to the named segment *)
  | Skip_segment  (** drop the stale consumer and continue *)

type annotation = {
  data_from : string;  (** producing segment *)
  within : Time.t;  (** maximum data age at consumer (re-)start *)
  on_expire : expiration_action;
}

type segment = {
  name : string;
  duration : Time.t;
  power : Energy.power;
  body : Task.context -> unit;
  snapshot_bytes : int;  (** volatile state captured by its checkpoint *)
  freshness : annotation option;
}

val segment :
  name:string ->
  duration:Time.t ->
  power:Energy.power ->
  ?body:(Task.context -> unit) ->
  ?snapshot_bytes:int ->
  ?freshness:annotation ->
  unit ->
  segment
(** [snapshot_bytes] defaults to 64 (registers + a small stack frame).
    @raise Invalid_argument on an empty name or negative duration. *)

type program = { program_name : string; segments : segment list }

val validate : program -> (unit, string) result
(** Segment names unique and non-empty; annotation references resolve to
    earlier segments; [Restart_from] targets exist and precede the
    annotated segment. *)

val bodies : program -> (string * (Task.context -> unit)) list
(** Segment bodies in program order: the access-recording surface for
    the static WAR-hazard analysis
    ({!Artemis_consistency.War.analyze_bodies}) - a segment is the
    checkpoint runtime's unit of re-execution. *)

type config = {
  checkpoint_cycles : int;  (** cost of taking one checkpoint *)
  restore_cycles : int;  (** cost of restoring after a reboot *)
  mcu_power : Energy.power;
  mcu_frequency_hz : int;
  max_loop_iterations : int;
  seed : int;
}

val default_config : config

val run : ?config:config -> Device.t -> program -> Artemis_trace.Stats.t
(** One program execution.  Checkpoint/restore work is accounted as
    [Runtime_work]; segment bodies as [App].  Events are logged into the
    device trace using the task-event vocabulary (a segment is logged as
    a task; a rollback shows as a repeated start).
    @raise Invalid_argument if {!validate} rejects the program. *)

val runtime_fram_bytes : Device.t -> int
(** FRAM occupied by the checkpointing runtime: bookkeeping plus the
    largest snapshot (double-buffered). *)

val backend : Artemis_backend.Backend.b
(** The unified-backend adapter (PR 10, [name = "checkpoint"]): runs
    ARTEMIS task apps under the TICS/checkpoint commit protocol inside
    the shared runtime - restore cost on every cold entry, snapshot cost
    inside every task commit.  Allocates [cpb.live] (RAM) and the
    double-buffered [cpb.snapshot] cell. *)
