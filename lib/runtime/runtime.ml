open Artemis_util
module Nvm = Artemis_nvm.Nvm
module Device = Artemis_device.Device
module Cost_model = Artemis_device.Cost_model
module Capacitor = Artemis_energy.Capacitor
module Event = Artemis_trace.Event
module Log = Artemis_trace.Log
module Stats = Artemis_trace.Stats
module Task = Artemis_task.Task
module Interp = Artemis_fsm.Interp
module Suite = Artemis_monitor.Suite
module Monitor = Artemis_monitor.Monitor
module Immortal = Artemis_immortal.Immortal
module Obs = Artemis_obs.Obs
module Adapt = Artemis_adapt.Adapt
module Energy_analysis = Artemis_energy_analysis.Energy_analysis
module Backend = Artemis_backend.Backend

let m_monitor_calls = Obs.counter "monitor_calls"
let h_task_attempt = Obs.histogram "task_attempt_us"
let h_monitor_call = Obs.histogram "monitor_call_us"

(* Test-only chaos hooks (see test/test_oracle_sensitivity.ml): each
   flag re-introduces a known-bad behaviour a faultsim oracle is meant
   to catch, so the mutation suite can prove the oracles still fire.
   All off by default; production code never sets them. *)
module Chaos = struct
  let reorder_begin_mcall = ref false
  let drop_adapt_journal = ref false
  let double_apply_action = ref false
  let double_adapt_event = ref false
  let leak_on_recovery = ref false

  let reset () =
    reorder_begin_mcall := false;
    drop_adapt_journal := false;
    double_apply_action := false;
    double_adapt_event := false;
    leak_on_recovery := false
end

(* Time a runtime-layer operation as one balanced span on [cat]'s track
   and (optionally) record its simulated duration in a histogram.  The
   wrapped functions can be cut short by power failures or by
   [Nvm.Injected_failure] from a fault-injection probe, so the span is
   closed on the exception path too - a crashed attempt still exports a
   well-formed (short) span rather than a dangling B. *)
let observed obs ~cat ?args ?hist name f =
  if not (Obs.Ctx.metrics_enabled obs || Obs.Ctx.tracing_enabled obs) then f ()
  else begin
    let t0 = Obs.Ctx.now_us obs in
    let finish () =
      let t1 = Obs.Ctx.now_us obs in
      (match hist with Some h -> Obs.Ctx.observe_us obs h (t1 - t0) | None -> ());
      if Obs.Ctx.tracing_enabled obs then
        Obs.Ctx.span obs ~cat ?args ~begin_us:t0 ~end_us:t1 name
    in
    match f () with
    | r ->
        finish ();
        r
    | exception e ->
        finish ();
        raise e
  end

(* Re-export of the canonical definition in {!Energy_analysis}: the
   static admissibility pass and the simulator must price deployments
   from the same type and the same cost functions. *)
type monitor_deployment = Energy_analysis.deployment =
  | Separate_module
  | Inlined
  | External_wireless of { radio_power : Energy.power; round_trip : Time.t }

let default_external_wireless =
  External_wireless { radio_power = Energy.mw 30.; round_trip = Time.of_ms 8 }

type config = {
  cost_model : Cost_model.t;
  max_loop_iterations : int;
  seed : int;
  deployment : monitor_deployment;
  rounds : int;
}

let default_config =
  {
    cost_model = Cost_model.default;
    max_loop_iterations = 200_000;
    seed = 42;
    deployment = Separate_module;
    rounds = 1;
  }

(* The runtime's whole scheduling position fits in one persistent cell so
   that updating it is a single (atomic) FRAM write: a power failure can
   never observe a half-advanced scheduler. *)
type cursor = {
  path : int;  (** 1-based path index; > path count means app done *)
  index : int;  (** position within the path *)
  finished : bool;  (** TASK_FINISHED: end event pending *)
  attempt : int;  (** start attempts of the current task instance *)
  end_ts : Time.t;  (** completion timestamp, fixed inside the task tx *)
}

type journal_entry =
  | Stepped of Interp.event
  | Reinited of string list
  | Adapted of { id : int; generation : int }

(* The monitor-call flag and (under instrumentation) the journal of
   committed monitor calls share one cell: flipping [active] off and
   recording "this event's call completed" is a single atomic FRAM
   write, so a crash can never observe a completed call that is missing
   from the journal or vice versa. *)
type mcall = {
  active : bool;
  journal : journal_entry list;  (** newest first; [] when not instrumented *)
}

(* Numbered alongside Nvm.injection_sites by the fault-injection engine.
   The adaptation sites are appended so the historic numbering (0-11)
   stays stable. *)
let injection_sites =
  [
    "rt.monitor_step.before";
    "rt.monitor_step.after";
    "rt.event_update.before";
    "rt.event_update.after";
    "rt.verdict.before";
    "rt.verdict.after";
  ]
  @ Adapt.injection_sites

(* One generation of the monitor deployment.  Live adaptation swaps the
   whole record at once: the suite, the deployment-ordered monitor array
   and the callMonitor thread always belong to the same generation. *)
type exec = {
  gen : int;
  suite : Suite.t;
  monitors : Monitor.t array;  (** deployment order; step [i] of the
                                   callMonitor thread runs monitor [i] *)
  thread : Immortal.t;
}

(* --- live adaptation bookkeeping (PR 4) --- *)

type adaptation_outcome =
  | Update_applied of { generation : int; migrations : Adapt.migration list }
  | Update_rejected of string
  | Update_unfinished  (** the run ended before delivery completed *)

type adaptation_record = {
  update_id : int;
  scheduled_iteration : int;
  wire_bytes : int;
  outcome : adaptation_outcome;
  first_attempt_at : Time.t;
  completed_at : Time.t;
  radio_time : Time.t;  (** modeled transfer time of the successful delivery *)
  radio_energy : Energy.energy;
}

(* Host-side delivery state: mutable heap fields survive simulated power
   failures (only Ram cells and the open transaction reset), which is how
   an interrupted delivery is retried — the durable exactly-once guarantee
   lives in the Adapt control cell, not here. *)
type delivery = {
  d_update : Adapt.update;
  d_iteration : int;
  mutable d_delivered : bool;  (** staged durably; do not re-deliver *)
  mutable d_first_attempt : Time.t option;
  mutable d_radio_time : Time.t;
  mutable d_radio_energy : Energy.energy;
  mutable d_record : adaptation_record option;
}

type state = {
  device : Device.t;
  app : Task.app;
  paths : Task.t array array;
  binst : Backend.instance;
      (** the task execute/commit protocol (PR 10): which intermittent-
          system family makes task effects durable, and at what cost *)
  mutable exec : exec;  (** the active generation's deployment *)
  execs : (int, exec) Hashtbl.t;  (** generation -> deployment (host cache) *)
  adapt : Adapt.t;
  deliveries : delivery list;
  config : config;
  cursor : cursor Nvm.cell;
  event : Interp.event Nvm.cell;
  mcall : mcall Nvm.cell;
  mcall_failures : Interp.failure list Nvm.cell;
  suspended : bool Nvm.cell;  (** completePath: monitoring suspended *)
  round : int Nvm.cell;  (** reactive execution: current pass, 1-based *)
  prng : Prng.t;
  probe : string -> unit;  (** fault-injection hook for runtime sites *)
  journaling : bool;  (** record the committed event prefix in [mcall] *)
  mutable iterations : int;
  mutable max_mcall_energy : Energy.energy;
      (** worst observed Monitor_work energy of a single
          [resume_monitor_call] attempt (the energy-admissibility
          bound-domination witness) *)
}

type mcall_result = Pending | Verdict of Interp.failure list

let dummy_event =
  {
    Interp.kind = Interp.Start;
    task = "";
    timestamp = Time.zero;
    path = 0;
    dep_data = [];
    energy_mj = 0.;
  }

let action_name a = Artemis_fsm.Ast.action_to_string a

(* Build one generation's executable deployment.  The callMonitor thread
   gets a per-generation name so each generation's persistent program
   counter is its own cell. *)
let make_exec nvm ~gen suite event mcall_failures =
  let monitors = Array.of_list (Suite.monitors suite) in
  let steps =
    Array.map
      (fun monitor () ->
        let ev = Nvm.read event in
        match Monitor.step monitor ev with
        | [] -> ()
        | failures ->
            (* joins the immortal step's transaction: the failure list,
               the monitor's own writes and the pc advance commit
               together *)
            Nvm.write_join mcall_failures (Nvm.read mcall_failures @ failures))
      monitors
  in
  let steps = if Array.length steps = 0 then [| (fun () -> ()) |] else steps in
  let name =
    if gen = 0 then "callMonitor" else Printf.sprintf "callMonitor.g%d" gen
  in
  let thread = Immortal.create nvm ~region:Monitor ~name ~steps in
  { gen; suite; monitors; thread }

let make_state ?(probe = fun _ -> ()) ?(journaling = false) ?(adaptations = [])
    ?(backend = Backend.immortal) ~config device app suite =
  (match Task.validate app with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runtime.run: invalid application: " ^ msg));
  if config.rounds < 1 then invalid_arg "Runtime.run: rounds must be positive";
  let nvm = Device.nvm device in
  let paths =
    Array.of_list (List.map (fun p -> Array.of_list p.Task.tasks) app.Task.paths)
  in
  let cursor =
    Nvm.cell nvm ~region:Runtime ~name:"rt.cursor" ~bytes:12
      { path = 1; index = 0; finished = false; attempt = 0; end_ts = Time.zero }
  in
  let event = Nvm.cell nvm ~region:Runtime ~name:"rt.event" ~bytes:24 dummy_event in
  let mcall =
    Nvm.cell nvm ~region:Runtime ~name:"rt.mcallActive" ~bytes:1
      { active = false; journal = [] }
  in
  let mcall_failures =
    Nvm.cell nvm ~region:Monitor ~name:"rt.mcallFailures" ~bytes:16 []
  in
  let suspended =
    Nvm.cell nvm ~region:Runtime ~name:"rt.suspended" ~bytes:1 false
  in
  let round = Nvm.cell nvm ~region:Runtime ~name:"rt.round" ~bytes:2 1 in
  (* volatile scratch (loop counters etc.): the 2 bytes of RAM Table 2
     reports for the runtime *)
  ignore (Nvm.cell nvm ~region:Runtime ~kind:Artemis_nvm.Nvm.Ram ~name:"rt.scratch" ~bytes:2 0);
  let exec0 = make_exec nvm ~gen:0 suite event mcall_failures in
  (* Replacement monitors built by future updates match the deployed
     engine (differential tests run fully-interpreted deployments). *)
  let engine =
    match Suite.monitors suite with
    | m :: _ -> Monitor.engine m
    | [] -> Monitor.Compiled
  in
  (* Energy admission for OTA updates (PR 9): a validated update whose
     properties could never complete a monitor call on one capacitor
     charge is refused as energy-inadmissible before it can be staged
     into the suite.  The budget is read per call so a policy swapped
     mid-run is honoured. *)
  let admission machines =
    Energy_analysis.admit ~deployment:config.deployment
      ~model:config.cost_model
      ~budget:(Energy_analysis.budget_of_device device)
      machines
  in
  let adapt = Adapt.create ~engine ~admission nvm ~app suite in
  let deliveries =
    List.map
      (fun (at, update) ->
        {
          d_update = update;
          d_iteration = at;
          d_delivered = false;
          d_first_attempt = None;
          d_radio_time = Time.zero;
          d_radio_energy = Energy.zero;
          d_record = None;
        })
      adaptations
  in
  let execs = Hashtbl.create 4 in
  Hashtbl.replace execs 0 exec0;
  (* Backend cells are allocated last, after the shared runtime's and the
     adaptation manager's, so every backend sees the same cell prefix and
     the footprint fingerprints stay deterministic per backend. *)
  let binst = Backend.setup backend ~probe device app in
  {
    device;
    app;
    paths;
    binst;
    exec = exec0;
    execs;
    adapt;
    deliveries;
    config;
    cursor;
    event;
    mcall;
    mcall_failures;
    suspended;
    round;
    prng = Prng.create ~seed:config.seed;
    probe;
    journaling;
    iterations = 0;
    max_mcall_energy = Energy.zero;
  }

let path_count st = Array.length st.paths
let current_task st (c : cursor) = st.paths.(c.path - 1).(c.index)

let overhead_power st = Cost_model.overhead_power st.config.cost_model

let consume_runtime st =
  Device.consume st.device Device.Runtime_work ~power:(overhead_power st)
    ~duration:(Cost_model.artemis_runtime_overhead st.config.cost_model)
    ()

let consume_monitor st ~power ~duration =
  Device.consume st.device Device.Monitor_work ~power ~duration ()

(* Per-deployment monitor costs (Section 7 "Implementation Alternatives"):
   (dispatch cost, per-property cost).  Inlined monitoring halves the
   per-check cycles and has no dispatch; external monitoring pays a radio
   round-trip per event and evaluates off-device.  Delegated to
   {!Energy_analysis} so the static bound prices exactly what the
   simulator charges. *)
let monitor_dispatch_cost st =
  Energy_analysis.dispatch_cost st.config.cost_model st.config.deployment

let monitor_step_cost st =
  Energy_analysis.step_cost st.config.cost_model st.config.deployment

let capacitor_mj st = Energy.to_mj (Capacitor.level (Device.capacitor st.device))

(* Run (or resume) the callMonitor thread, paying the cost model per step.
   A power failure leaves the thread mid-way; the next loop iteration
   resumes it - that is monitorFinalize (Figure 8, line 16).

   Dispatch is task-indexed: a property whose machine does not watch the
   event's task is never invoked, so its step costs nothing beyond the
   O(1) table lookup (covered by the per-call dispatch cost).  Monitor
   overhead therefore scales with the monitors an event can fire, not
   with the deployed property count. *)
let resume_monitor_call_inner st =
  observed (Device.obs st.device) ~cat:"monitor" ~hist:h_monitor_call
    "monitor_call"
  @@ fun () ->
  let step_power, step_duration = monitor_step_cost st in
  let step_watches_event st =
    let i = Immortal.pc st.exec.thread in
    i < Array.length st.exec.monitors
    && Monitor.watches_event st.exec.monitors.(i) (Nvm.read st.event)
  in
  let run_one_step () =
    st.probe "rt.monitor_step.before";
    (match Immortal.run_step st.exec.thread with
    | Immortal.Ran _ | Immortal.Done -> ());
    st.probe "rt.monitor_step.after"
  in
  let rec steps () =
    if Immortal.completed st.exec.thread then begin
      (* Single-write commit point of the whole call: the active flag
         drops and (under instrumentation) the event joins the committed
         journal atomically.  The thread is re-armed by the next
         [begin_monitor_call], so a crash on either side of this write
         leaves a consistent state: still-active resumes into this same
         branch, inactive means the call (and its journal entry) are
         durable. *)
      let failures = Nvm.read st.mcall_failures in
      let m = Nvm.read st.mcall in
      let journal =
        if st.journaling then Stepped (Nvm.read st.event) :: m.journal
        else m.journal
      in
      Nvm.write st.mcall { active = false; journal };
      Verdict failures
    end
    else if not (step_watches_event st) then begin
      run_one_step ();
      steps ()
    end
    else
      match consume_monitor st ~power:step_power ~duration:step_duration with
      | Device.Completed ->
          run_one_step ();
          steps ()
      | Device.Interrupted | Device.Starved -> Pending
  in
  if Immortal.fresh st.exec.thread then begin
    let dispatch_power, dispatch_duration = monitor_dispatch_cost st in
    match consume_monitor st ~power:dispatch_power ~duration:dispatch_duration with
    | Device.Completed -> steps ()
    | Device.Interrupted | Device.Starved -> Pending
  end
  else steps ()

(* One call attempt is the admissibility analysis's atomic unit: each
   [resume_monitor_call] invocation runs within a single power cycle
   (interruption returns [Pending]), so its Monitor_work delta must stay
   under the static per-call bound.  Record the worst attempt, on the
   exception path too - an injected crash mid-call still spent energy. *)
let resume_monitor_call st =
  let before = Device.energy_in st.device Device.Monitor_work in
  let note () =
    let spent =
      Energy.sub_exact (Device.energy_in st.device Device.Monitor_work) before
    in
    if Energy.(st.max_mcall_energy < spent) then st.max_mcall_energy <- spent
  in
  match resume_monitor_call_inner st with
  | r ->
      note ();
      r
  | exception e ->
      note ();
      raise e

let begin_monitor_call st =
  (* Crash-consistency ordering: re-arm the thread and clear the failure
     accumulator BEFORE raising the active flag.  The reverse order has a
     window where active is set while the pc still reads "completed" from
     the previous call, and a reboot inside it would deliver a stale
     empty verdict without stepping any monitor. *)
  Obs.Ctx.incr (Device.obs st.device) m_monitor_calls;
  if !Chaos.reorder_begin_mcall then begin
    (* the pre-PR2 ordering bug, kept re-introducible for the mutation
       suite: active goes up while the thread still reads "completed" *)
    Nvm.write st.mcall { (Nvm.read st.mcall) with active = true };
    Immortal.reset st.exec.thread;
    Nvm.write st.mcall_failures []
  end
  else begin
    Immortal.reset st.exec.thread;
    Nvm.write st.mcall_failures [];
    Nvm.write st.mcall { (Nvm.read st.mcall) with active = true }
  end;
  resume_monitor_call st

(* --- cursor movements; each is one atomic cell write --- *)

let move_to_path st p =
  ignore st;
  { path = p; index = 0; finished = false; attempt = 0; end_ts = Time.zero }

let advance st =
  let c = Nvm.read st.cursor in
  if c.index + 1 < Array.length st.paths.(c.path - 1) then
    Nvm.write st.cursor
      { c with index = c.index + 1; finished = false; attempt = 0 }
  else begin
    Device.record st.device (Event.Path_completed { path = c.path });
    Nvm.write st.suspended false;
    Nvm.write st.cursor (move_to_path st (c.path + 1))
  end

let restart_path st ~target ~reason =
  observed (Device.obs st.device) ~cat:"runtime" "restart_path" @@ fun () ->
  let c = Nvm.read st.cursor in
  let p = Option.value target ~default:c.path in
  Device.record st.device (Event.Path_restarted { path = p; reason });
  let tasks =
    Array.to_list st.paths.(p - 1) |> List.map (fun t -> t.Task.name)
  in
  (* The restart spans many cells (suspension flag, every watching
     monitor's state and variables, the cursor), so it runs as one NVM
     transaction: a power failure mid-restart rolls the whole action back
     and the retried verdict re-issues it, instead of leaving
     half-reinitialized monitors behind. *)
  let nvm = Device.nvm st.device in
  Nvm.begin_tx nvm;
  Nvm.write_join st.suspended false;
  Suite.reinit_for_tasks st.exec.suite ~tasks;
  if st.journaling then begin
    let m = Nvm.read st.mcall in
    Nvm.write_join st.mcall { m with journal = Reinited tasks :: m.journal }
  end;
  Nvm.write_join st.cursor (move_to_path st p);
  Nvm.commit_tx nvm

let skip_path st ~target ~reason =
  let c = Nvm.read st.cursor in
  let p = Option.value target ~default:c.path in
  Device.record st.device (Event.Path_skipped { path = p; reason });
  Nvm.write st.suspended false;
  Nvm.write st.cursor (move_to_path st (p + 1))

(* --- task execution (the Proceed case of checkTask) --- *)

let execute_task st =
  let c = Nvm.read st.cursor in
  let task = current_task st c in
  observed (Device.obs st.device) ~cat:"app"
    ~args:[ ("attempt", Obs.I c.attempt) ]
    ~hist:h_task_attempt task.Task.name
  @@ fun () ->
  let nvm = Device.nvm st.device in
  (* The commit protocol is the backend's (PR 10): the reference backend
     runs the body inside one NVM transaction whose commit also flips
     the cursor; Alpaca-style backends log-then-swap instead.  [context]
     is evaluated only after the task's energy was consumed, so [now] is
     the completion time; [commit] is the runtime's cursor write, made
     durable atomically with the task's own effects. *)
  let context () = { Task.nvm; now = Device.now st.device; prng = st.prng } in
  let commit () =
    Nvm.tx_write st.cursor
      { c with finished = true; end_ts = Device.now st.device }
  in
  match st.binst.Backend.execute ~task ~context ~commit with
  | Backend.Interrupted -> ()
  | Backend.Committed ->
      (* Commit strictly before the completion record: the record
         chokepoint feeds observers like the input-freshness tracker
         (Consistency.Freshness via Device.set_on_record), whose stamps
         must describe durable data.  A crash between these two lines
         loses only the event - the tracker recovers it from the task's
         earlier Task_started (its pending-stamp protocol). *)
      Device.record st.device (Event.Task_completed { task = task.Task.name })

(* --- verdict application --- *)

let apply_verdict_body st failures =
  let ev = Nvm.read st.event in
  List.iter
    (fun (f : Interp.failure) ->
      Device.record st.device
        (Event.Monitor_verdict
           { monitor = f.failed_machine; task = ev.Interp.task;
             action = action_name f.action }))
    failures;
  match Suite.arbitrate failures with
  | None -> (
      match ev.Interp.kind with
      | Interp.Start -> execute_task st
      | Interp.End -> advance st)
  | Some f -> (
      Device.record st.device
        (Event.Runtime_action
           { action = action_name f.action; task = ev.Interp.task });
      if !Chaos.double_apply_action then
        Device.record st.device
          (Event.Runtime_action
             { action = action_name f.action; task = ev.Interp.task });
      let reason = f.failed_machine in
      match f.action with
      | Artemis_fsm.Ast.Restart_task -> (
          match ev.Interp.kind with
          | Interp.Start -> ()  (* stay on the task; next iteration retries *)
          | Interp.End ->
              let c = Nvm.read st.cursor in
              Nvm.write st.cursor { c with finished = false; attempt = 0 })
      | Artemis_fsm.Ast.Skip_task -> advance st
      | Artemis_fsm.Ast.Restart_path ->
          restart_path st ~target:f.target_path ~reason
      | Artemis_fsm.Ast.Skip_path -> skip_path st ~target:f.target_path ~reason
      | Artemis_fsm.Ast.Complete_path -> (
          let c = Nvm.read st.cursor in
          Device.record st.device (Event.Monitoring_suspended { path = c.path });
          Nvm.write st.suspended true;
          match ev.Interp.kind with
          | Interp.Start -> execute_task st
          | Interp.End -> advance st))

let apply_verdict st failures =
  st.probe "rt.verdict.before";
  apply_verdict_body st failures;
  st.probe "rt.verdict.after"

(* --- the live-adaptation update window (PR 4) ---

   Runs between monitor calls: never while a callMonitor thread is
   mid-flight, so a generation swap cannot strand a half-delivered
   event.  The durable protocol lives in [Adapt]; this layer adds radio
   delivery costing, trace/journal bookkeeping and the host-side exec
   swap. *)

let chunk_bytes = 64

(* Delivery is always costed through the External_wireless radio model:
   on-device deployments still receive updates over the same BLE-class
   link the external-monitor variant uses for events. *)
let radio_params st =
  match st.config.deployment with
  | External_wireless { radio_power; round_trip } -> (radio_power, round_trip)
  | Separate_module | Inlined -> (
      match default_external_wireless with
      | External_wireless { radio_power; round_trip } -> (radio_power, round_trip)
      | Separate_module | Inlined -> assert false)

(* Swap in the committed generation's deployment.  Building an exec is
   cached per generation: the thread's persistent pc cell must be
   allocated exactly once even when a crash forces this path to re-run. *)
let sync_exec st =
  let gen = Adapt.generation st.adapt in
  if gen <> st.exec.gen then begin
    let exec =
      match Hashtbl.find_opt st.execs gen with
      | Some e -> e
      | None ->
          let e =
            make_exec (Device.nvm st.device) ~gen (Adapt.active st.adapt)
              st.event st.mcall_failures
          in
          Hashtbl.replace st.execs gen e;
          e
    in
    st.exec <- exec
  end

let find_delivery st id =
  List.find_opt (fun d -> d.d_update.Adapt.id = id) st.deliveries

let finish_delivery st (d : delivery) outcome =
  d.d_delivered <- true;
  if d.d_record = None then
    d.d_record <-
      Some
        {
          update_id = d.d_update.Adapt.id;
          scheduled_iteration = d.d_iteration;
          wire_bytes = Adapt.wire_bytes d.d_update;
          outcome;
          first_attempt_at = Option.value d.d_first_attempt ~default:Time.zero;
          completed_at = Device.now st.device;
          radio_time = d.d_radio_time;
          radio_energy = d.d_radio_energy;
        }

let apply_staged st =
  match
    Adapt.apply ~probe:st.probe
      ~commit_extra:(fun (a : Adapt.applied) ->
        (* joins the flip transaction: the generation change and its
           journal entry commit atomically (the golden oracle replays the
           update at exactly this point) *)
        if st.journaling && not !Chaos.drop_adapt_journal then
          let m = Nvm.read st.mcall in
          Nvm.tx_write st.mcall
            {
              m with
              journal =
                Adapted { id = a.Adapt.id; generation = a.Adapt.generation }
                :: m.journal;
            })
      st.adapt
  with
  | Adapt.Idle -> ()
  | Adapt.Applied a ->
      Device.record st.device
        (Event.Adaptation_applied { id = a.Adapt.id; generation = a.Adapt.generation });
      if !Chaos.double_adapt_event then
        Device.record st.device
          (Event.Adaptation_applied
             { id = a.Adapt.id; generation = a.Adapt.generation });
      (match find_delivery st a.Adapt.id with
      | Some d ->
          finish_delivery st d
            (Update_applied
               { generation = a.Adapt.generation; migrations = a.Adapt.migrations })
      | None -> ());
      sync_exec st
  | Adapt.Rejected { id; reason } -> (
      Device.record st.device (Event.Adaptation_rejected { id; reason });
      match find_delivery st id with
      | Some d -> finish_delivery st d (Update_rejected reason)
      | None -> ())

let deliver st (d : delivery) =
  if Adapt.already_applied st.adapt d.d_update.Adapt.id then
    (* a crash separated the committed flip from this host-side flag:
       the durable applied list is the source of truth *)
    finish_delivery st d
      (Update_applied { generation = Adapt.generation st.adapt; migrations = [] })
  else begin
    if d.d_first_attempt = None then d.d_first_attempt <- Some (Device.now st.device);
    let bytes = Adapt.wire_bytes d.d_update in
    let radio_power, round_trip = radio_params st in
    let chunks = max 1 ((bytes + chunk_bytes - 1) / chunk_bytes) in
    let duration = Time.scale round_trip chunks in
    match
      Device.consume st.device Device.Runtime_work ~during:"adapt.deliver"
        ~power:radio_power ~duration ()
    with
    | Device.Interrupted | Device.Starved ->
        ()  (* retransmitted at the next update window *)
    | Device.Completed ->
        d.d_radio_time <- Time.add d.d_radio_time duration;
        d.d_radio_energy <-
          Energy.add d.d_radio_energy (Energy.consumed radio_power duration);
        let staged = Adapt.stage ~probe:st.probe st.adapt d.d_update in
        d.d_delivered <- true;
        Device.record st.device
          (Event.Adaptation_staged { id = d.d_update.Adapt.id; bytes = staged });
        apply_staged st
  end

let update_window st =
  (* cheap when idle: one cell read and an int compare *)
  sync_exec st;
  if
    st.deliveries <> [] || Adapt.pending_id st.adapt <> None
  then begin
    observed (Device.obs st.device) ~cat:"runtime" "update_window" @@ fun () ->
    (* Recovery first: an update staged before a crash must finish its
       apply before any new delivery restages over it. *)
    if Adapt.pending_id st.adapt <> None then apply_staged st;
    List.iter
      (fun d ->
        if (not d.d_delivered) && st.iterations >= d.d_iteration then
          deliver st d
        else if
          d.d_delivered && d.d_record = None
          && Adapt.already_applied st.adapt d.d_update.Adapt.id
        then begin
          (* a crash right after the committed flip lost the host-side
             bookkeeping (the durable applied list is the source of
             truth): record the event and close the delivery *)
          let generation = Adapt.generation st.adapt in
          Device.record st.device
            (Event.Adaptation_applied { id = d.d_update.Adapt.id; generation });
          finish_delivery st d (Update_applied { generation; migrations = [] })
        end)
      st.deliveries
  end

(* --- event phases --- *)

let make_event st kind (c : cursor) =
  let task = current_task st c in
  let dep_data =
    match kind with
    | Interp.Start -> []
    | Interp.End ->
        List.map (fun (name, get) -> (name, get ())) task.Task.monitored
  in
  {
    Interp.kind;
    task = task.Task.name;
    timestamp =
      (match kind with Interp.Start -> Device.now st.device | Interp.End -> c.end_ts);
    path = c.path;
    dep_data;
    energy_mj = capacitor_mj st;
  }

let start_phase st =
  let c = Nvm.read st.cursor in
  if c.index = 0 && c.attempt = 0 then
    Device.record st.device (Event.Path_started { path = c.path });
  let c = { c with attempt = c.attempt + 1 } in
  Nvm.write st.cursor c;
  let task = current_task st c in
  Device.record st.device
    (Event.Task_started { task = task.Task.name; attempt = c.attempt });
  st.probe "rt.event_update.before";
  Nvm.write st.event (make_event st Interp.Start c);
  st.probe "rt.event_update.after";
  match consume_runtime st with
  | Device.Interrupted | Device.Starved -> ()
  | Device.Completed -> (
      if Nvm.read st.suspended then execute_task st
      else
        match begin_monitor_call st with
        | Pending -> ()
        | Verdict failures -> apply_verdict st failures)

let end_phase st =
  let c = Nvm.read st.cursor in
  st.probe "rt.event_update.before";
  Nvm.write st.event (make_event st Interp.End c);
  st.probe "rt.event_update.after";
  match consume_runtime st with
  | Device.Interrupted | Device.Starved -> ()
  | Device.Completed -> (
      if Nvm.read st.suspended then advance st
      else
        match begin_monitor_call st with
        | Pending -> ()
        | Verdict failures -> apply_verdict st failures)

(* --- main loop and reporting --- *)

let finish st outcome = Artemis_device.Report.stats st.device ~outcome

let run_internal ?probe ?journaling ?adaptations ?backend ~config device app
    suite =
  let st =
    make_state ?probe ?journaling ?adaptations ?backend ~config device app suite
  in
  Device.record device Event.Boot;
  (* initial hard reset: resetMonitor (Figure 8, line 14) *)
  Suite.hard_reset st.exec.suite;
  (* Route the probe to the NVM bookkeeping sites too: one controller
     sees every numbered injection point. *)
  Nvm.set_probe (Device.nvm device) probe;
  let rec loop () =
    st.iterations <- st.iterations + 1;
    if st.iterations > config.max_loop_iterations then begin
      Device.record device
        (Event.Horizon_reached { reason = "iteration limit (no progress)" });
      finish st (Stats.Did_not_finish "iteration limit (no progress)")
    end
    else if Device.horizon_exceeded device then begin
      let reason = "simulation time horizon" in
      Device.record device (Event.Horizon_reached { reason });
      finish st (Stats.Did_not_finish reason)
    end
    else begin
      (* Reboot-time repair first (PR 10): a backend whose commit was
         interrupted mid-protocol (e.g. an Alpaca swap with a sealed
         log) finishes it before the scheduler reads the cursor - the
         redo may be exactly what advances it.  One cell read when
         there is nothing to repair. *)
      st.binst.Backend.recover ();
      let c = Nvm.read st.cursor in
      if c.path > path_count st then begin
        let completed_round = Nvm.read st.round in
        if completed_round < config.rounds then begin
          (* reactive execution: start the next pass; monitor state
             persists across rounds (periodicity spans them) *)
          Device.record device (Event.Round_completed { round = completed_round });
          Nvm.write st.round (completed_round + 1);
          Nvm.write st.cursor (move_to_path st 1);
          loop ()
        end
        else begin
          Device.record device Event.App_completed;
          finish st Stats.Completed
        end
      end
      else if (Nvm.read st.mcall).active then begin
        (* monitorFinalize: progress the interrupted monitor call *)
        (match resume_monitor_call st with
        | Pending -> ()
        | Verdict failures -> apply_verdict st failures);
        loop ()
      end
      else begin
        (* Between monitor calls: finish or stage live property updates
           (no-op without scheduled adaptations or a staged update). *)
        update_window st;
        if c.finished then end_phase st else start_phase st;
        loop ()
      end
    end
  in
  (* An injected fault behaves exactly like a capacitor brown-out at the
     probed instruction: the device aborts volatile/transactional state,
     recharges and reboots, and the loop resumes from persistent state. *)
  let rec protected () =
    try loop () with
    | Nvm.Injected_failure site -> (
        if !Chaos.leak_on_recovery then
          (* mutation-suite variant: the recovery path allocates a fresh
             uniquely-named cell, violating the stable-footprint contract *)
          ignore
            (Nvm.cell (Device.nvm st.device) ~region:Runtime
               ~name:
                 (Printf.sprintf "rt.leak%d" (Device.power_failures st.device))
               ~bytes:4 0);
        match Device.force_power_failure st.device ~during:("fault:" ^ site) () with
        | Device.Starved ->
            Device.record device
              (Event.Horizon_reached { reason = "harvester starved" });
            finish st (Stats.Did_not_finish "harvester starved")
        | Device.Completed | Device.Interrupted -> protected ())
  in
  let stats =
    Fun.protect
      ~finally:(fun () -> Nvm.set_probe (Device.nvm device) None)
      protected
  in
  (st, stats)

let run ?(config = default_config) ?adaptations ?backend device app suite =
  snd (run_internal ?adaptations ?backend ~config device app suite)

let adaptation_records st =
  List.map
    (fun d ->
      match d.d_record with
      | Some r -> r
      | None ->
          {
            update_id = d.d_update.Adapt.id;
            scheduled_iteration = d.d_iteration;
            wire_bytes = Adapt.wire_bytes d.d_update;
            outcome = Update_unfinished;
            first_attempt_at = Option.value d.d_first_attempt ~default:Time.zero;
            completed_at = Device.now st.device;
            radio_time = d.d_radio_time;
            radio_energy = d.d_radio_energy;
          })
    st.deliveries

type adaptive = {
  adaptive_stats : Stats.t;
  records : adaptation_record list;  (** scheduled-delivery order *)
  final_suite : Suite.t;  (** the active suite when the run ended *)
  final_generation : int;
}

let run_adaptive ?(config = default_config) ?backend ~adaptations device app
    suite =
  let st, stats = run_internal ~adaptations ?backend ~config device app suite in
  (* the run may end between a committed flip and the next update window *)
  sync_exec st;
  {
    adaptive_stats = stats;
    records = adaptation_records st;
    final_suite = st.exec.suite;
    final_generation = st.exec.gen;
  }

type instrumented = {
  stats : Stats.t;
  journal : journal_entry list;  (** oldest first *)
  partial : (Interp.event * int) option;
      (** monitor call in flight at end of run: (event, immortal pc) *)
  final_suite : Suite.t;
  adaptations : adaptation_record list;
  max_call_energy : Energy.energy;
      (** worst single monitor-call attempt observed (Monitor_work) *)
}

let run_instrumented ?(config = default_config) ?adaptations ?backend ~probe
    device app suite =
  let st, stats =
    run_internal ~probe ~journaling:true ?adaptations ?backend ~config device
      app suite
  in
  sync_exec st;
  let m = Nvm.read st.mcall in
  let partial =
    if m.active && Immortal.pc st.exec.thread > 0 then
      Some (Nvm.read st.event, Immortal.pc st.exec.thread)
    else None
  in
  {
    stats;
    journal = List.rev m.journal;
    partial;
    final_suite = st.exec.suite;
    adaptations = adaptation_records st;
    max_call_energy = st.max_mcall_energy;
  }

let runtime_fram_bytes device =
  Nvm.footprint (Device.nvm device) ~kind:Artemis_nvm.Nvm.Fram
    ~region:Artemis_nvm.Nvm.Runtime
