(** The ARTEMIS intermittent runtime (Section 4.1).

    Executes a task-based application on the simulated device while
    feeding start/end events to the deployed monitor suite and applying
    the corrective actions monitors return.  Faithful to the paper:

    - tasks are all-or-nothing: bodies run inside an NVM transaction that
      also flips the persistent task status, so a power failure rolls the
      whole step back (Section 3.1);
    - the last event lives in a persistent [MonitorEvent] cell; EndTask
      timestamps are fixed inside the task's transaction and never
      refreshed by re-deliveries, while StartTask timestamps are refreshed
      on every re-execution and time-anchored monitors ignore the
      refreshes (Section 4.1.3);
    - the monitor call runs as an ImmortalThreads-style thread, one step
      per monitor; a power failure inside the call is resumed by
      [monitorFinalize] at the next loop entry (Figure 8, line 16);
    - when several monitors fail on one event the runtime arbitrates with
      {!Artemis_monitor.Suite.arbitrate};
    - [restartPath] re-initializes the monitors watching tasks of the
      restarted path; [completePath] suspends monitoring until the
      current path completes (Table 1). *)


open Artemis_util
open Artemis_device
open Artemis_task

type monitor_deployment = Artemis_energy_analysis.Energy_analysis.deployment =
  | Separate_module
      (** the paper's design: monitors as a separate module reached
          through the generic callMonitor interface (default) *)
  | Inlined
      (** Section 7 "Implementation Alternatives": monitoring code woven
          into application/runtime code - no dispatch cost, cheaper
          per-property checks, at the price of a larger footprint *)
  | External_wireless of { radio_power : Energy.power; round_trip : Time.t }
      (** Section 7: monitors on an external device; every event costs a
          radio round-trip but property evaluation is off-device *)
(** Re-export of {!Artemis_energy_analysis.Energy_analysis.deployment}:
    the simulator charges monitor calls through the same cost functions
    the static energy-admissibility pass bounds, so the two can never
    drift.  The runtime also installs that pass as the adaptation
    validate step's admission check - an OTA update whose properties
    could never complete a monitor call within one capacitor charge is
    rejected as ["energy-inadmissible: ..."]. *)

val default_external_wireless : monitor_deployment
(** 30 mW radio, 8 ms round-trip per event (BLE-class magnitudes). *)

type config = {
  cost_model : Cost_model.t;
  max_loop_iterations : int;
      (** no-progress horizon: a run exceeding this many scheduler
          iterations is reported as non-terminating *)
  seed : int;  (** seed of the task-context PRNG *)
  deployment : monitor_deployment;
  rounds : int;
      (** reactive execution: how many full passes over the application's
          paths one run performs (default 1).  Monitor state persists
          across rounds, so periodicity and attempt counters span them. *)
}

val default_config : config

val run :
  ?config:config ->
  ?adaptations:(int * Artemis_adapt.Adapt.update) list ->
  ?backend:Artemis_backend.Backend.b ->
  Device.t -> Task.app -> Artemis_monitor.Suite.t ->
  Artemis_trace.Stats.t
(** Execute one application run to completion (or non-termination).
    Events are recorded in the device's trace log.  [adaptations]
    schedules live property updates: each [(k, update)] is delivered over
    the radio at the first update window on or after scheduler iteration
    [k] (see {!run_adaptive} for the result details).  [backend] selects
    the task execute/commit protocol (PR 10) - which intermittent-system
    family makes task effects durable; defaults to
    {!Artemis_backend.Backend.immortal}, the paper's task-transaction
    protocol, with byte-identical behaviour to the pre-backend runtime.
    @raise Invalid_argument if {!Task.validate} rejects the app. *)

(** {2 Live property adaptation (PR 4)}

    Updates are delivered between monitor calls at an {e update window}
    of the scheduler loop: the wire image is costed over the
    [External_wireless] radio model (in 64-byte chunks), staged into the
    NVM staging region and applied through the crash-atomic
    {!Artemis_adapt.Adapt} protocol.  An interrupted delivery is
    retransmitted at the next window; an update staged before a power
    failure is finished (validate → build → migrate → flip) before
    anything new is staged, and the single-cell generation flip guarantees
    each update applies exactly once. *)

type adaptation_outcome =
  | Update_applied of {
      generation : int;
      migrations : Artemis_adapt.Adapt.migration list;
    }
  | Update_rejected of string
  | Update_unfinished  (** the run ended before delivery completed *)

type adaptation_record = {
  update_id : int;
  scheduled_iteration : int;
  wire_bytes : int;
  outcome : adaptation_outcome;
  first_attempt_at : Time.t;  (** when delivery first started *)
  completed_at : Time.t;  (** when the flip (or rejection) committed *)
  radio_time : Time.t;  (** modeled transfer time of the successful delivery *)
  radio_energy : Energy.energy;
}

type adaptive = {
  adaptive_stats : Artemis_trace.Stats.t;
  records : adaptation_record list;  (** scheduled-delivery order *)
  final_suite : Artemis_monitor.Suite.t;
  final_generation : int;
}

val run_adaptive :
  ?config:config ->
  ?backend:Artemis_backend.Backend.b ->
  adaptations:(int * Artemis_adapt.Adapt.update) list ->
  Device.t -> Task.app -> Artemis_monitor.Suite.t ->
  adaptive
(** {!run} plus per-update latency/energy records and the final active
    suite — the measurement entry point of the adaptation study. *)

val runtime_fram_bytes : Device.t -> int
(** FRAM bytes of the runtime's own persistent cells after a run was set
    up (Table 2's "ARTEMIS runtime" column). *)

(** {2 Fault-injection instrumentation}

    Hooks used by [Artemis_faultsim] to drive deterministic power
    failures through the runtime's crash windows and to check its
    invariants afterwards.  Normal runs pay nothing for them: the probe
    defaults to a no-op and journaling is off. *)

val injection_sites : string list
(** Labels of the runtime-level injection points, in numbering order
    (the engine numbers {!Artemis_nvm.Nvm.injection_sites} first, then
    these).  Each site is probed with its label; a probe that raises
    {!Artemis_nvm.Nvm.Injected_failure} models a power failure at that
    instruction. *)

type journal_entry =
  | Stepped of Artemis_fsm.Interp.event
      (** a monitor call over this event committed *)
  | Reinited of string list
      (** a path restart re-initialized the monitors watching these
          tasks *)
  | Adapted of { id : int; generation : int }
      (** a live property update committed its generation flip; the
          entry is journaled inside the same NVM transaction as the
          flip, so replay can swap suites at the exact point *)

type instrumented = {
  stats : Artemis_trace.Stats.t;
  journal : journal_entry list;
      (** committed monitor-call prefix, oldest first.  Re-executing it
          against a fresh suite must reproduce the monitors' persistent
          state - the fault-injection engine's golden oracle. *)
  partial : (Artemis_fsm.Interp.event * int) option;
      (** a monitor call was in flight when the run ended: the event and
          how many of the thread's steps had committed *)
  final_suite : Artemis_monitor.Suite.t;
      (** the active suite when the run ended (≠ the deployed suite once
          an adaptation applied) *)
  adaptations : adaptation_record list;
      (** per-update delivery records, as in {!run_adaptive} *)
  max_call_energy : Energy.energy;
      (** the worst Monitor_work energy any single monitor-call attempt
          (one [resume] within one power cycle, including attempts cut
          short by injected failures) actually drew - the measurement the
          energy-admissibility bound must dominate *)
}

val run_instrumented :
  ?config:config ->
  ?adaptations:(int * Artemis_adapt.Adapt.update) list ->
  ?backend:Artemis_backend.Backend.b ->
  probe:(string -> unit) ->
  Device.t -> Task.app -> Artemis_monitor.Suite.t ->
  instrumented
(** Like {!run}, with [probe] installed on every injection site (both
    the NVM bookkeeping sites and the runtime sites above) and the
    monitor-call journal recorded.  A probe raising
    {!Artemis_nvm.Nvm.Injected_failure} triggers
    {!Device.force_power_failure} and the run resumes from persistent
    state, exactly as after a capacitor brown-out. *)

(** Test-only chaos hooks for the oracle-sensitivity (mutation) suite:
    each flag re-introduces a known-bad behaviour hardened away by the
    PR2/PR4 campaigns, so the faultsim oracles can be demonstrated to
    fail, not just pass.  All default to [false]; production code must
    never set them.  The NVM-level hooks live in
    {!Artemis_nvm.Nvm.Chaos}. *)
module Chaos : sig
  val reorder_begin_mcall : bool ref
  (** [begin_monitor_call] raises the active flag {e before} re-arming
      the thread and clearing the failure accumulator (the pre-PR2
      ordering bug): a crash in the window delivers a stale verdict and
      journals an event no monitor stepped (golden re-execution). *)

  val drop_adapt_journal : bool ref
  (** The generation flip commits without its [Adapted] journal entry,
      so golden re-execution never learns the update applied (torn-suite
      golden oracle). *)

  val double_apply_action : bool ref
  (** The arbitrated corrective action is recorded twice per verdict
      (action-at-most-once oracle). *)

  val double_adapt_event : bool ref
  (** [Adaptation_applied] is logged twice for one committed flip
      (update-exactly-once oracle). *)

  val leak_on_recovery : bool ref
  (** Every injected-crash recovery allocates a fresh uniquely-named NVM
      cell (stable-footprint oracle). *)

  val reset : unit -> unit
  (** Clear every flag. *)
end
