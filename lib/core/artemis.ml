(** Public facade of the ARTEMIS reproduction.

    Typical use (see [examples/quickstart.ml]):
    {[
      let device = Artemis.Device.create () in
      let app, _handles = Artemis.Health_app.make (Artemis.Device.nvm device) in
      let suite =
        Artemis.compile_and_deploy_exn device app Artemis.Health_app.spec_text
      in
      let stats = Artemis.Runtime.run device app suite in
      Format.printf "%a@." Artemis.Stats.pp stats
    ]} *)

(* Re-exported building blocks, one alias per subsystem. *)
module Time = Artemis_util.Time
module Energy = Artemis_util.Energy
module Table = Artemis_util.Table
module Prng = Artemis_util.Prng
module Json = Artemis_util.Json
module Par = Artemis_util.Par
module Obs = Artemis_obs.Obs
module Nvm = Artemis_nvm.Nvm
module Persistent_clock = Artemis_clock.Persistent_clock
module Remanence_timekeeper = Artemis_clock.Remanence_timekeeper
module Capacitor = Artemis_energy.Capacitor
module Harvester = Artemis_energy.Harvester
module Charging_policy = Artemis_energy.Charging_policy
module Event = Artemis_trace.Event
module Log = Artemis_trace.Log
module Stats = Artemis_trace.Stats
module Export = Artemis_trace.Export
module Summary = Artemis_trace.Summary
module Device = Artemis_device.Device
module Cost_model = Artemis_device.Cost_model
module Energy_analysis = Artemis_energy_analysis.Energy_analysis
module Task = Artemis_task.Task
module Channel = Artemis_task.Channel
module Health_app = Artemis_task.Health_app
module Soil_app = Artemis_task.Soil_app

module Spec = struct
  module Ast = Artemis_spec.Ast
  module Parser = Artemis_spec.Parser
  module Printer = Artemis_spec.Printer
  module Validate = Artemis_spec.Validate
  module Consistency = Artemis_spec.Consistency
end

module Fsm = struct
  module Ast = Artemis_fsm.Ast
  module Parser = Artemis_fsm.Parser
  module Printer = Artemis_fsm.Printer
  module Typecheck = Artemis_fsm.Typecheck
  module Interp = Artemis_fsm.Interp
  module Compile = Artemis_fsm.Compile
  module Table = Artemis_fsm.Table
  module Explore = Artemis_fsm.Explore
end

(** Memory-consistency and input-freshness checking (PR 7): a static
    WAR-hazard pass over recorded per-task NVM access sets, and the
    dynamic freshness tracker behind faultsim's [input-freshness]
    oracle.  (Distinct from {!Spec.Consistency}, the specification
    linter.) *)
module Consistency = struct
  module War = Artemis_consistency.War
  module Freshness = Artemis_consistency.Freshness
end

module To_fsm = Artemis_transform.To_fsm
module To_c = Artemis_transform.To_c
module To_c_project = Artemis_transform.To_c_project
module Monitor = Artemis_monitor.Monitor
module Suite = Artemis_monitor.Suite
module Adapt = Artemis_adapt.Adapt
module Backend = Artemis_backend.Backend
module Runtime = Artemis_runtime.Runtime
module Mayfly = Artemis_mayfly.Mayfly
module Mayfly_lang = Artemis_mayfly.Mayfly_lang
module Immortal = Artemis_immortal.Immortal
module Checkpoint = Artemis_checkpoint.Checkpoint
module Ink = Artemis_ink.Ink
module Alpaca = Artemis_alpaca.Alpaca

(** The runtime-matrix registry (PR 10): every task-execution backend the
    shared runtime can host, reference family first.  All five run the
    same applications, monitors, and fault-injection campaigns; only the
    task commit protocol (and its energy/FRAM cost) differs. *)
module Backends = struct
  let all : Backend.b list =
    [
      Backend.immortal;
      Checkpoint.backend;
      Ink.backend;
      Mayfly.backend;
      Alpaca.backend;
    ]

  let names = List.map Backend.name all

  let find name =
    List.find_opt (fun b -> String.equal (Backend.name b) name) all
end

(** Compile a property specification (concrete syntax) into intermediate-
    language machines, validating it against the application when one is
    given. *)
let compile ?options ?app spec_text =
  let ( let* ) r f = Result.bind r f in
  let* spec = Spec.Parser.parse spec_text in
  let* () =
    match app with
    | None -> Ok ()
    | Some app -> (
        match Spec.Validate.check app spec with
        | Ok () -> Ok ()
        | Error issues -> Error (Spec.Validate.issues_to_string issues))
  in
  Ok (To_fsm.spec ?options spec)

let compile_exn ?options ?app spec_text =
  match compile ?options ?app spec_text with
  | Ok machines -> machines
  | Error msg -> failwith msg

(** Allocate the application-specific monitors on a device's FRAM.
    [engine] selects the execution backend (default: deploy-time compiled
    closures; [Monitor.Interpreted] keeps the AST interpreter;
    [Monitor.Table] runs the flat-table bytecode engine). *)
let deploy ?engine device machines =
  Suite.create ?engine (Device.nvm device) machines

(** Full front-to-back pipeline: parse, validate against [app], compile to
    machines, deploy on [device]. *)
let compile_and_deploy_exn ?options ?engine device app spec_text =
  deploy ?engine device (compile_exn ?options ~app spec_text)

(** Generated monitor translation unit (Section 4.2). *)
let generate_monitor_c ?options spec_text =
  Result.map To_c.suite (compile ?options spec_text)
