open Artemis_util
module Nvm = Artemis_nvm.Nvm
module Device = Artemis_device.Device
module Event = Artemis_trace.Event
module Task = Artemis_task.Task
module Backend = Artemis_backend.Backend

(* Numbered after the NVM and runtime sites by the fault-injection
   engine: the four crash windows of the two-phase commit. *)
let injection_sites =
  [
    "alpaca.log.before";
    "alpaca.log.after";
    "alpaca.swap.before";
    "alpaca.swap.after";
  ]

module Chaos = struct
  let torn_commit_log = ref false

  let reset () = torn_commit_log := false
end

type config = {
  log_base_cycles : int;
  log_cycles_per_cell : int;
  swap_base_cycles : int;
  swap_cycles_per_cell : int;
  mcu_power : Energy.power;
  mcu_frequency_hz : int;
}

let default_config =
  {
    log_base_cycles = 60;
    log_cycles_per_cell = 40;
    swap_base_cycles = 40;
    swap_cycles_per_cell = 30;
    mcu_power = Energy.mw 1.2;
    mcu_frequency_hz = 1_000_000;
  }

(* The sealed commit log: [Some (task, cells)] from the instant the
   write set is durably promised until the swap publishes it.  Plain
   data only (the redo thunks live host-side), so the region digests
   used by the faultsim oracles stay meaningful. *)
type log = (string * string list) option

(* Under [Chaos.torn_commit_log] the recovery swap loses the youngest
   Application-region entry of the redo log - the seeded "broken swap"
   the task-atomicity oracle must catch. *)
let drop_newest_application entries =
  let rec go = function
    | [] -> []
    | (_, Nvm.Application, _) :: rest -> rest
    | e :: rest -> e :: go rest
  in
  List.rev (go (List.rev entries))

let setup ?(config = default_config) ~probe device _app =
  let nvm = Device.nvm device in
  let log : log Nvm.cell =
    Nvm.cell nvm ~region:Runtime ~name:"alpaca.log" ~bytes:16 None
  in
  (* Host-side redo thunks (captured values, not pending views): like
     every host-side mirror of durable state, they survive simulated
     power failures; the durable [log] cell is what decides whether
     they are authoritative. *)
  let redo = ref [] in
  let cycles_to_time cycles =
    Time.of_us (cycles * 1_000_000 / config.mcu_frequency_hz)
  in
  let consume_cycles ~during cycles =
    Device.consume device Device.Runtime_work ~during ~power:config.mcu_power
      ~duration:(cycles_to_time cycles) ()
  in
  (* Phase two: publish a sealed log onto committed state and clear the
     seal.  Idempotent - the redo thunks carry frozen values - so every
     reboot inside the window simply re-runs it.  [recovery] marks calls
     that finish a commit the crashed attempt could not report: they own
     the task's completion record. *)
  let rec swap ~recovery =
    match Nvm.read log with
    | None -> true
    | Some (task_name, names) -> (
        probe "alpaca.swap.before";
        match
          consume_cycles ~during:"alpaca.swap"
            (config.swap_base_cycles
            + (config.swap_cycles_per_cell * List.length names))
        with
        | Device.Starved -> false
        | Device.Interrupted ->
            (* the reboot re-enters recovery; retry on the fresh charge *)
            if Device.horizon_exceeded device then false else swap ~recovery
        | Device.Completed ->
            let entries =
              if recovery && !Chaos.torn_commit_log then
                drop_newest_application !redo
              else !redo
            in
            List.iter (fun (_, _, apply) -> apply ()) entries;
            Nvm.write log None;
            redo := [];
            (* Clear strictly before the completion record, like the
               reference backend's commit: a crash between the two loses
               only the event. *)
            if recovery then
              Device.record device (Event.Task_completed { task = task_name });
            probe "alpaca.swap.after";
            true)
  in
  {
    Backend.recover = (fun () -> ignore (swap ~recovery:true));
    execute =
      (fun ~task ~context ~commit ->
        (* Privatization: the open transaction's pending views are the
           task's scratch buffers - reads see them, committed state
           does not, and a power failure anywhere before the log seals
           discards them wholesale. *)
        Nvm.begin_tx nvm;
        match
          Device.consume device Device.App ~during:task.Task.name
            ~power:task.Task.power ~duration:task.Task.duration ()
        with
        | Device.Interrupted | Device.Starved -> Backend.Interrupted
        | Device.Completed -> (
            task.Task.body (context ());
            commit ();
            (* Phase one: freeze the write set and seal it behind the
               single durable [log] write - the commit point. *)
            let entries = Nvm.capture_tx nvm in
            match
              consume_cycles ~during:"alpaca.log"
                (config.log_base_cycles
                + (config.log_cycles_per_cell * List.length entries))
            with
            | Device.Interrupted | Device.Starved ->
                (* the power failure aborted the open transaction; the
                   log never sealed, so the captured set is void *)
                Backend.Interrupted
            | Device.Completed ->
                probe "alpaca.log.before";
                redo := entries;
                Nvm.write log
                  (Some (task.Task.name, List.map (fun (n, _, _) -> n) entries));
                probe "alpaca.log.after";
                (* the scratch buffers are spent: the sealed log is now
                   the authoritative carrier of the write set *)
                Nvm.drop_tx nvm;
                if swap ~recovery:false then Backend.Committed
                else Backend.Interrupted));
    fram_bytes = (fun () -> 16);
  }

module B : Backend.S = struct
  let name = "alpaca"

  let description =
    "checkpoint-free task privatization with two-phase (log-then-swap) commit"

  let injection_sites = injection_sites
  let bodies = Task.bodies
  let setup ~probe device app = setup ~probe device app
end

let backend : Backend.b = (module B)
