(** Alpaca-style checkpoint-free backend (PR 10).

    Alpaca (Maeng, Colin & Lucia; arXiv 1909.06951) achieves
    intermittence without checkpoints: each task {e privatizes} the
    non-volatile cells it writes into scratch buffers and, on task
    completion, commits them with a two-phase protocol - first a
    durable {b log} of the write set (the commit point, one cell
    write), then a {b swap} that publishes the logged values onto
    committed state.  A power failure

    - {e before the log seals} discards the scratch buffers wholesale:
      the task re-executes from clean pre-state, paying no checkpoint
      or restore cost;
    - {e after the log seals} re-enters recovery on every reboot, which
      idempotently re-applies the redo log until the swap completes -
      the task is never re-executed.

    In this simulation the privatization buffers are the NVM
    transaction's pending views ({!Artemis_nvm.Nvm.capture_tx} freezes
    them into redo thunks, {!Artemis_nvm.Nvm.drop_tx} retires them once
    the log is sealed).  The protocol exposes four injection sites
    ([alpaca.log.before/after], [alpaca.swap.before/after]) so the
    fault-injection campaign can crash inside both phases. *)

open Artemis_util
module Backend = Artemis_backend.Backend

val injection_sites : string list
(** The four two-phase-commit crash windows, in numbering order (the
    fault-injection engine appends them after the NVM and runtime
    sites). *)

type config = {
  log_base_cycles : int;  (** fixed cost of sealing the commit log *)
  log_cycles_per_cell : int;  (** per logged cell *)
  swap_base_cycles : int;  (** fixed cost of the publish pass *)
  swap_cycles_per_cell : int;  (** per published cell *)
  mcu_power : Energy.power;
  mcu_frequency_hz : int;
}

val default_config : config
(** 1.2 mW at 1 MHz (MSP430FR-class magnitudes); log 60+40/cell cycles,
    swap 40+30/cell cycles - cheaper than a TICS-style checkpoint, paid
    only on successful completion. *)

val setup :
  ?config:config ->
  probe:(string -> unit) ->
  Artemis_device.Device.t ->
  Artemis_task.Task.app ->
  Backend.instance
(** Allocate the 16-byte [alpaca.log] cell (Runtime region) and return
    the protocol hooks.  [recover] finishes a sealed commit; [execute]
    runs one privatized attempt. *)

val backend : Backend.b
(** The registered backend ([name = "alpaca"]), at {!default_config}. *)

(** Test-only chaos hook for the oracle-sensitivity (mutation) suite. *)
module Chaos : sig
  val torn_commit_log : bool ref
  (** The {e recovery} swap loses the youngest Application-region entry
      of the redo log - a broken (non-atomic) swap.  Clean runs are
      unaffected; any injected crash inside the sealed window recovers
      to a torn application state, which the task-atomicity oracle must
      report. *)

  val reset : unit -> unit
end
