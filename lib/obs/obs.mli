(** Observability layer: metrics registry and span tracing, per-context.

    ARTEMIS's evaluation is all attribution (Figures 12-16 split wall
    time and energy between the application, the runtime and the
    monitors), so the simulator needs a way to see {e inside} a run, not
    just its end-of-run {!Artemis_trace.Stats} totals.  This module is
    the single hook interface the instrumented libraries ([lib/nvm],
    [lib/device], [lib/runtime], [lib/monitor], [lib/immortal],
    [lib/faultsim]) talk to:

    - a {b metrics registry}: named counters, gauges and histograms with
      fixed microsecond buckets.  Registration allocates once; updates
      mutate a preallocated slot, so the hot path allocates nothing.
    - a {b span tracer} that collects Chrome trace-event records
      (loadable in Perfetto / [chrome://tracing]): B/E span pairs for
      task attempts, monitor calls, NVM transactions, charging delays
      and faultsim campaign runs, plus instant events for verdicts,
      corrective actions and brown-outs.

    Both halves are {b off by default} and guarded by a single boolean
    check, so the compiled monitor fast path keeps its PR1 numbers when
    observability is disabled (the bench tracks this contract).

    Since PR 5 the layer is split in two:

    - metric {e handles} ({!counter}, {!gauge}, {!histogram}) intern
      names into a process-global, mutex-protected registry - they are
      registered once at module-initialisation time and are safe to
      share across domains;
    - metric {e values}, trace events and the simulated clock live in a
      {!ctx}.  A context is single-owner - it must never be mutated by
      two domains concurrently - and the domain-parallel campaign runner
      gives every worker run its own context, merging them
      deterministically with {!Ctx.absorb}.

    The historic process-global API is kept as a thin wrapper over the
    domain-local {e current} context ({!current}/{!set_current}/
    {!with_ctx}): the initial domain owns {!default}, every freshly
    spawned domain gets a private quiet context, and all existing call
    sites behave exactly as before on a single domain.

    Timestamps come from the {e simulated} clock - the owning device
    installs it with {!set_clock} - so exported traces are in simulated
    microseconds, which is exactly the unit the Chrome trace-event [ts]
    field wants. *)

(** {1 Metric handles (process-global, domain-safe)} *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or look up) a counter.  Idempotent by name. *)

val gauge : string -> gauge

val histogram : ?buckets_us:int array -> string -> histogram
(** Fixed upper-bound buckets in microseconds (default powers of ten
    from 1 us to 60 s, plus an implicit overflow bucket). *)

(** {1 Trace argument values} *)

type arg = S of string | I of int | F of float

(** {1 Contexts} *)

type ctx
(** One recording surface: metric values, trace buffer, simulated clock
    and timeline base.  Single-owner: a context may be handed from one
    domain to another, but must never be mutated concurrently. *)

module Ctx : sig
  type t = ctx

  val create : ?like:t -> unit -> t
  (** A fresh quiet context (clock [fun () -> 0], zero metrics, empty
      trace).  [?like] copies the metrics/tracing on-off switches, which
      is how per-run worker contexts inherit the campaign's settings. *)

  val set_metrics : t -> bool -> unit
  val metrics_enabled : t -> bool
  val set_tracing : t -> bool -> unit
  val tracing_enabled : t -> bool
  val set_clock : t -> (unit -> int) -> unit
  val set_base : t -> int -> unit
  val base : t -> int
  val now_us : t -> int

  val incr : t -> counter -> unit
  val add : t -> counter -> int -> unit
  val counter_value : t -> counter -> int
  val set_gauge : t -> gauge -> float -> unit
  val gauge_value : t -> gauge -> float
  val observe_us : t -> histogram -> int -> unit

  val span :
    t ->
    cat:string ->
    ?args:(string * arg) list ->
    begin_us:int ->
    end_us:int ->
    string ->
    unit

  val instant :
    t -> cat:string -> ?args:(string * arg) list -> ?ts:int -> string -> unit

  val event_count : t -> int

  val absorb : into:t -> t -> unit
  (** [absorb ~into src] appends [src]'s whole record onto [into],
      exactly as if [src]'s activity had happened sequentially on
      [into]: counters and histograms sum, gauges follow last-writer
      (a gauge never written in [src] keeps [into]'s value), trace
      events shift by [into]'s current timeline base and re-intern
      their category tracks in emission order, and [into]'s base
      advances by [src]'s final base.  Absorbing per-run contexts in
      run order therefore reproduces the sequential timeline
      byte-for-byte.  [src] is not modified. *)

  val metrics_dump : t -> string
  val metrics_json : t -> string
  val trace_json : t -> string
  val reset : t -> unit
end

val default : ctx
(** The context the initial domain starts with; the process-global
    surface of PRs 1-4. *)

val current : unit -> ctx
(** This domain's current context.  Spawned domains start with a private
    quiet context, so cross-domain recording never aliases by accident. *)

val set_current : ctx -> unit

val with_ctx : ctx -> (unit -> 'a) -> 'a
(** Run a thunk with [ctx] installed as this domain's current context,
    restoring the previous one afterwards (exception-safe). *)

(** {1 Process-global compatibility API}

    Every function below acts on {!current}[ ()].  On the initial domain
    with no [with_ctx] in scope this is {!default}, i.e. the exact
    pre-PR5 behaviour. *)

(** {2 Switches} *)

val set_metrics : bool -> unit
val metrics_enabled : unit -> bool
val set_tracing : bool -> unit
val tracing_enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered metric, drop all collected trace events and
    reset the timeline base.  Registrations survive (they are
    module-level in the instrumented libraries). *)

(** {2 Simulated clock} *)

val set_clock : (unit -> int) -> unit
(** Install the current-simulated-time supplier (microseconds).  Called
    by [Device.create] on the device's context; the last created device
    on a context wins, which is correct for the sequential simulator. *)

val set_base : int -> unit
(** Offset added to every timestamp.  The fault-injection engine bumps
    it between campaign runs so each run (whose device clock restarts at
    zero) lands on its own stretch of the exported timeline. *)

val now_us : unit -> int
(** Base plus the installed clock. *)

(** {2 Metrics} *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe_us : histogram -> int -> unit

val metrics_dump : unit -> string
(** Human-readable text dump: one sorted [kind name value] line per
    metric (histograms render their bucket counts inline). *)

val metrics_json : unit -> string
(** The registry as a JSON object with [counters], [gauges] and
    [histograms] members; floats rendered via {!Artemis_util.Json} so
    the document stays valid for degenerate values. *)

(** {2 Tracing} *)

val span :
  cat:string ->
  ?args:(string * arg) list ->
  begin_us:int ->
  end_us:int ->
  string ->
  unit
(** Emit one balanced B/E pair on the category's track.  Both events are
    appended together, so a crash-interrupted caller that reaches its
    exit path (or exception handler) can never leave a dangling B. *)

val instant : cat:string -> ?args:(string * arg) list -> ?ts:int -> string -> unit
(** Instant event ([ph:"i"]); [ts] defaults to {!now_us}. *)

val event_count : unit -> int

val trace_json : unit -> string
(** The collected events as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}]) with thread-name metadata so Perfetto
    labels each category's track. *)
