(** Observability layer: process-wide metrics registry and span tracing.

    ARTEMIS's evaluation is all attribution (Figures 12-16 split wall
    time and energy between the application, the runtime and the
    monitors), so the simulator needs a way to see {e inside} a run, not
    just its end-of-run {!Artemis_trace.Stats} totals.  This module is
    the single hook interface the instrumented libraries ([lib/nvm],
    [lib/device], [lib/runtime], [lib/monitor], [lib/immortal],
    [lib/faultsim]) talk to:

    - a {b metrics registry}: named counters, gauges and histograms with
      fixed microsecond buckets.  Registration allocates once; updates
      mutate a preallocated record, so the hot path allocates nothing.
    - a {b span tracer} that collects Chrome trace-event records
      (loadable in Perfetto / [chrome://tracing]): B/E span pairs for
      task attempts, monitor calls, NVM transactions, charging delays
      and faultsim campaign runs, plus instant events for verdicts,
      corrective actions and brown-outs.

    Both halves are {b off by default} and guarded by a single boolean
    check, so the compiled monitor fast path keeps its PR1 numbers when
    observability is disabled (the bench tracks this contract).

    Everything is process-global deliberately: the simulator is
    single-threaded and sequential runs reset the layer between runs
    ({!reset}).  Timestamps come from the {e simulated} clock - the
    owning device installs it with {!set_clock} - so exported traces are
    in simulated microseconds, which is exactly the unit the Chrome
    trace-event [ts] field wants. *)

(** {1 Switches} *)

val set_metrics : bool -> unit
val metrics_enabled : unit -> bool
val set_tracing : bool -> unit
val tracing_enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered metric, drop all collected trace events and
    reset the timeline base.  Registrations survive (they are
    module-level in the instrumented libraries). *)

(** {1 Simulated clock} *)

val set_clock : (unit -> int) -> unit
(** Install the current-simulated-time supplier (microseconds).  Called
    by [Device.create]; the last created device wins, which is correct
    for the sequential simulator. *)

val set_base : int -> unit
(** Offset added to every timestamp.  The fault-injection engine bumps
    it between campaign runs so each run (whose device clock restarts at
    zero) lands on its own stretch of the exported timeline. *)

val now_us : unit -> int
(** Base plus the installed clock. *)

(** {1 Metrics} *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or look up) a counter.  Idempotent by name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?buckets_us:int array -> string -> histogram
(** Fixed upper-bound buckets in microseconds (default powers of ten
    from 1 us to 60 s, plus an implicit overflow bucket). *)

val observe_us : histogram -> int -> unit

val metrics_dump : unit -> string
(** Human-readable text dump: one sorted [kind name value] line per
    metric (histograms render their bucket counts inline). *)

val metrics_json : unit -> string
(** The registry as a JSON object with [counters], [gauges] and
    [histograms] members; floats rendered via {!Artemis_util.Json} so
    the document stays valid for degenerate values. *)

(** {1 Tracing} *)

type arg = S of string | I of int | F of float

val span :
  cat:string ->
  ?args:(string * arg) list ->
  begin_us:int ->
  end_us:int ->
  string ->
  unit
(** Emit one balanced B/E pair on the category's track.  Both events are
    appended together, so a crash-interrupted caller that reaches its
    exit path (or exception handler) can never leave a dangling B. *)

val instant : cat:string -> ?args:(string * arg) list -> ?ts:int -> string -> unit
(** Instant event ([ph:"i"]); [ts] defaults to {!now_us}. *)

val event_count : unit -> int

val trace_json : unit -> string
(** The collected events as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}]) with thread-name metadata so Perfetto
    labels each category's track. *)
