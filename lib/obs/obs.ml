module Json = Artemis_util.Json

(* The registry of metric *handles* (names interned to dense ids) is
   process-global and mutex-protected: instrumented libraries register
   their counters at module-initialisation time, once, from whichever
   domain initialises them.  The *values* live in a context ([ctx]): a
   record of per-id value arrays, a trace-event buffer and a simulated
   clock.  Contexts are single-owner (one domain at a time, never two
   concurrently); cross-domain aggregation goes through [Ctx.absorb],
   which the parallel campaign runner uses to stitch per-run contexts
   back into one deterministic timeline. *)

type arg = S of string | I of int | F of float

type counter = { c_id : int; c_name : string }
type gauge = { g_id : int; g_name : string }
type histogram = { h_id : int; h_name : string; h_buckets : int array }

let default_buckets_us =
  [| 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000; 60_000_000 |]

(* --- handle registry (shared across domains) --- *)

let reg_mu = Mutex.create ()
let counters_reg : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges_reg : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms_reg : (string, histogram) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock reg_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mu) f

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters_reg name with
      | Some c -> c
      | None ->
          let c = { c_id = Hashtbl.length counters_reg; c_name = name } in
          Hashtbl.replace counters_reg name c;
          c)

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauges_reg name with
      | Some g -> g
      | None ->
          let g = { g_id = Hashtbl.length gauges_reg; g_name = name } in
          Hashtbl.replace gauges_reg name g;
          g)

let histogram ?(buckets_us = default_buckets_us) name =
  locked (fun () ->
      match Hashtbl.find_opt histograms_reg name with
      | Some h -> h
      | None ->
          let h =
            { h_id = Hashtbl.length histograms_reg; h_name = name;
              h_buckets = buckets_us }
          in
          Hashtbl.replace histograms_reg name h;
          h)

let registered tbl =
  locked (fun () -> Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])

(* --- contexts --- *)

type hcell = {
  counts : int array;  (* length buckets + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum_us : int;
}

type event = {
  ph : char;  (* 'B' | 'E' | 'i' | 'M' *)
  name : string;
  cat : string;
  ts : int;
  tid : int;
  args : (string * arg) list;
}

type ctx = {
  mutable metrics_on : bool;
  mutable tracing_on : bool;
  mutable clock : unit -> int;
  mutable base_us : int;
  mutable cvals : int array;  (* indexed by counter id *)
  mutable gvals : float array;  (* indexed by gauge id *)
  mutable gwrites : int array;  (* write count per gauge: absorb order *)
  mutable hcells : hcell option array;  (* indexed by histogram id *)
  (* events in reverse emission order; rendered at export time *)
  mutable events : event list;
  mutable n_events : int;
  (* categories get stable track ids in first-use order *)
  tracks : (string, int) Hashtbl.t;
  mutable track_order : string list;  (* reverse first-use order *)
}

module Ctx = struct
  type t = ctx

  let create ?like () =
    let sizes =
      locked (fun () ->
          ( Hashtbl.length counters_reg,
            Hashtbl.length gauges_reg,
            Hashtbl.length histograms_reg ))
    in
    let nc, ng, nh = sizes in
    {
      metrics_on = (match like with Some c -> c.metrics_on | None -> false);
      tracing_on = (match like with Some c -> c.tracing_on | None -> false);
      clock = (fun () -> 0);
      base_us = 0;
      cvals = Array.make (max nc 1) 0;
      gvals = Array.make (max ng 1) 0.;
      gwrites = Array.make (max ng 1) 0;
      hcells = Array.make (max nh 1) None;
      events = [];
      n_events = 0;
      tracks = Hashtbl.create 8;
      track_order = [];
    }

  (* switches and clock *)

  let set_metrics t b = t.metrics_on <- b
  let metrics_enabled t = t.metrics_on
  let set_tracing t b = t.tracing_on <- b
  let tracing_enabled t = t.tracing_on
  let set_clock t f = t.clock <- f
  let set_base t b = t.base_us <- b
  let base t = t.base_us
  let now_us t = t.base_us + t.clock ()

  (* metrics: handles may be registered after a ctx was created, so the
     value arrays grow on first use of a late id (allocation happens once
     per (ctx, handle), never on the steady-state hot path) *)

  let grow_int arr id =
    let n = Array.make (max (id + 1) (2 * Array.length arr)) 0 in
    Array.blit arr 0 n 0 (Array.length arr);
    n

  let grow_float arr id =
    let n = Array.make (max (id + 1) (2 * Array.length arr)) 0. in
    Array.blit arr 0 n 0 (Array.length arr);
    n

  (* [incr]/[add] sit on the per-event monitor path, so the common cases
     must inline into the caller (ocamlopt without flambda only honours
     explicit [@inline] across libraries): metrics off is a load and a
     branch, metrics on is an unsafe in-bounds bump.  Only the
     late-registered-handle case goes out of line to grow the array. *)

  let [@inline never] grow_add t c n =
    t.cvals <- grow_int t.cvals c.c_id;
    t.cvals.(c.c_id) <- t.cvals.(c.c_id) + n

  let [@inline always] add t c n =
    if t.metrics_on then begin
      let id = c.c_id in
      let arr = t.cvals in
      if id < Array.length arr then
        Array.unsafe_set arr id (Array.unsafe_get arr id + n)
      else grow_add t c n
    end

  let [@inline always] incr t c = add t c 1

  let counter_value t c =
    if c.c_id < Array.length t.cvals then t.cvals.(c.c_id) else 0

  let set_gauge t g v =
    if t.metrics_on then begin
      let id = g.g_id in
      if id >= Array.length t.gvals then begin
        t.gvals <- grow_float t.gvals id;
        t.gwrites <- grow_int t.gwrites id
      end;
      t.gvals.(id) <- v;
      t.gwrites.(id) <- t.gwrites.(id) + 1
    end

  let gauge_value t g =
    if g.g_id < Array.length t.gvals then t.gvals.(g.g_id) else 0.

  let hcell t (h : histogram) =
    let id = h.h_id in
    if id >= Array.length t.hcells then begin
      let n = Array.make (max (id + 1) (2 * Array.length t.hcells)) None in
      Array.blit t.hcells 0 n 0 (Array.length t.hcells);
      t.hcells <- n
    end;
    match t.hcells.(id) with
    | Some cell -> cell
    | None ->
        let cell =
          { counts = Array.make (Array.length h.h_buckets + 1) 0;
            h_count = 0; h_sum_us = 0 }
        in
        t.hcells.(id) <- Some cell;
        cell

  let observe_us t h v =
    if t.metrics_on then begin
      let cell = hcell t h in
      (* linear scan over <= 10 fixed bounds: no allocation, no log *)
      let n = Array.length h.h_buckets in
      let i = ref 0 in
      while !i < n && v > h.h_buckets.(!i) do
        Stdlib.incr i
      done;
      cell.counts.(!i) <- cell.counts.(!i) + 1;
      cell.h_count <- cell.h_count + 1;
      cell.h_sum_us <- cell.h_sum_us + v
    end

  (* tracing *)

  let track t cat =
    match Hashtbl.find_opt t.tracks cat with
    | Some id -> id
    | None ->
        let id = Hashtbl.length t.tracks + 1 in
        Hashtbl.replace t.tracks cat id;
        t.track_order <- cat :: t.track_order;
        id

  let emit t ph ~cat ~name ~ts ~args =
    t.events <- { ph; name; cat; ts; tid = track t cat; args } :: t.events;
    t.n_events <- t.n_events + 1

  let span t ~cat ?(args = []) ~begin_us ~end_us name =
    if t.tracing_on then begin
      (* emitted as one balanced pair; [end_us] clamps so a clock that did
         not advance still yields a well-formed zero-length span *)
      let end_us = max begin_us end_us in
      emit t 'B' ~cat ~name ~ts:begin_us ~args;
      emit t 'E' ~cat ~name ~ts:end_us ~args:[]
    end

  let instant t ~cat ?(args = []) ?ts name =
    if t.tracing_on then
      let ts = match ts with Some x -> x | None -> now_us t in
      emit t 'i' ~cat ~name ~ts ~args

  let event_count t = t.n_events

  (* deterministic merge: append [src]'s record into [into] exactly as if
     [src]'s runs had executed sequentially on [into].  Events shift by
     [into]'s current timeline base and re-intern their track ids in
     emission order; afterwards the base advances by everything [src]
     consumed (its final [base_us]), so the next absorb lands after it. *)
  let absorb ~into:dst src =
    Array.iteri
      (fun id v ->
        if v <> 0 then begin
          if id >= Array.length dst.cvals then dst.cvals <- grow_int dst.cvals id;
          dst.cvals.(id) <- dst.cvals.(id) + v
        end)
      src.cvals;
    Array.iteri
      (fun id w ->
        if w > 0 then begin
          if id >= Array.length dst.gvals then begin
            dst.gvals <- grow_float dst.gvals id;
            dst.gwrites <- grow_int dst.gwrites id
          end;
          dst.gvals.(id) <- src.gvals.(id);
          dst.gwrites.(id) <- dst.gwrites.(id) + w
        end)
      src.gwrites;
    Array.iteri
      (fun id cell ->
        match cell with
        | None -> ()
        | Some c ->
            let h = locked (fun () ->
                Hashtbl.fold
                  (fun _ h acc -> if h.h_id = id then Some h else acc)
                  histograms_reg None)
            in
            (match h with
            | None -> ()
            | Some h ->
                let d = hcell dst h in
                Array.iteri (fun i n -> d.counts.(i) <- d.counts.(i) + n) c.counts;
                d.h_count <- d.h_count + c.h_count;
                d.h_sum_us <- d.h_sum_us + c.h_sum_us))
      src.hcells;
    let shift = dst.base_us in
    List.iter
      (fun e ->
        dst.events <-
          { e with ts = e.ts + shift; tid = track dst e.cat } :: dst.events;
        dst.n_events <- dst.n_events + 1)
      (List.rev src.events);
    dst.base_us <- dst.base_us + src.base_us

  (* rendering *)

  let metrics_dump t =
    let buf = Buffer.create 1024 in
    let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    registered counters_reg
    |> List.sort (fun a b -> String.compare a.c_name b.c_name)
    |> List.iter (fun c -> adds "counter %s %d\n" c.c_name (counter_value t c));
    registered gauges_reg
    |> List.sort (fun a b -> String.compare a.g_name b.g_name)
    |> List.iter (fun g ->
           adds "gauge %s %s\n" g.g_name (Json.float_lit (gauge_value t g)));
    registered histograms_reg
    |> List.sort (fun a b -> String.compare a.h_name b.h_name)
    |> List.iter (fun h ->
           let cell = hcell t h in
           adds "histogram %s count %d sum_us %d" h.h_name cell.h_count
             cell.h_sum_us;
           Array.iteri
             (fun i bound -> adds " le%d:%d" bound cell.counts.(i))
             h.h_buckets;
           adds " inf:%d\n" cell.counts.(Array.length h.h_buckets));
    Buffer.contents buf

  let metrics_json t =
    let obj fields = "{" ^ String.concat ", " fields ^ "}" in
    let counters_json =
      registered counters_reg
      |> List.sort (fun a b -> String.compare a.c_name b.c_name)
      |> List.map (fun c ->
             Printf.sprintf "%s: %d" (Json.quote c.c_name) (counter_value t c))
    in
    let gauges_json =
      registered gauges_reg
      |> List.sort (fun a b -> String.compare a.g_name b.g_name)
      |> List.map (fun g ->
             Printf.sprintf "%s: %s" (Json.quote g.g_name)
               (Json.float_lit (gauge_value t g)))
    in
    let histograms_json =
      registered histograms_reg
      |> List.sort (fun a b -> String.compare a.h_name b.h_name)
      |> List.map (fun h ->
             let cell = hcell t h in
             Printf.sprintf
               "%s: {\"count\": %d, \"sum_us\": %d, \"buckets_us\": [%s], \"counts\": [%s]}"
               (Json.quote h.h_name) cell.h_count cell.h_sum_us
               (String.concat ", "
                  (Array.to_list (Array.map string_of_int h.h_buckets)))
               (String.concat ", "
                  (Array.to_list (Array.map string_of_int cell.counts))))
    in
    Printf.sprintf "{\n  \"counters\": %s,\n  \"gauges\": %s,\n  \"histograms\": %s\n}\n"
      (obj counters_json) (obj gauges_json) (obj histograms_json)

  let arg_json = function
    | S s -> Json.quote s
    | I n -> string_of_int n
    | F f -> Json.float_lit f

  let event_json e =
    let buf = Buffer.create 96 in
    let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    adds "{\"name\": %s, \"cat\": %s, \"ph\": \"%c\", \"ts\": %d, \"pid\": 1, \"tid\": %d"
      (Json.quote e.name) (Json.quote e.cat) e.ph e.ts e.tid;
    (match e.args with
    | [] -> ()
    | args ->
        adds ", \"args\": {%s}"
          (String.concat ", "
             (List.map (fun (k, v) -> Json.quote k ^ ": " ^ arg_json v) args));
        ());
    (* instant events need a scope; "t" = thread *)
    if e.ph = 'i' then adds ", \"s\": \"t\"";
    adds "}";
    Buffer.contents buf

  let trace_json t =
    let metadata =
      { ph = 'M'; name = "process_name"; cat = "__metadata"; ts = 0; tid = 0;
        args = [ ("name", S "artemis-sim") ] }
      :: (List.rev t.track_order
         |> List.map (fun cat ->
                {
                  ph = 'M';
                  name = "thread_name";
                  cat = "__metadata";
                  ts = 0;
                  tid = track t cat;
                  args = [ ("name", S cat) ];
                }))
    in
    let all = metadata @ List.rev t.events in
    let total = List.length all in
    let buf = Buffer.create (128 * (total + 2)) in
    Buffer.add_string buf "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    List.iteri
      (fun i e ->
        Buffer.add_string buf "  ";
        Buffer.add_string buf (event_json e);
        if i < total - 1 then Buffer.add_string buf ",";
        Buffer.add_char buf '\n')
      all;
    Buffer.add_string buf "]}\n";
    Buffer.contents buf

  let reset t =
    Array.fill t.cvals 0 (Array.length t.cvals) 0;
    Array.fill t.gvals 0 (Array.length t.gvals) 0.;
    Array.fill t.gwrites 0 (Array.length t.gwrites) 0;
    Array.iter
      (function
        | None -> ()
        | Some cell ->
            Array.fill cell.counts 0 (Array.length cell.counts) 0;
            cell.h_count <- 0;
            cell.h_sum_us <- 0)
      t.hcells;
    t.events <- [];
    t.n_events <- 0;
    t.base_us <- 0
end

(* --- the current context (domain-local) ---

   The initial domain owns the default context; a freshly spawned domain
   gets its own private quiet context, so two domains never share one by
   accident.  Parallel drivers install a per-task context with
   [with_ctx]. *)

let default = Ctx.create ()

let current_key : ctx Domain.DLS.key = Domain.DLS.new_key (fun () -> Ctx.create ())

let () = Domain.DLS.set current_key default

let current () = Domain.DLS.get current_key
let set_current c = Domain.DLS.set current_key c

let with_ctx c f =
  let prev = current () in
  set_current c;
  Fun.protect ~finally:(fun () -> set_current prev) f

(* --- compatibility layer: the historic API acts on the current ctx --- *)

let set_metrics b = Ctx.set_metrics (current ()) b
let metrics_enabled () = Ctx.metrics_enabled (current ())
let set_tracing b = Ctx.set_tracing (current ()) b
let tracing_enabled () = Ctx.tracing_enabled (current ())
let set_clock f = Ctx.set_clock (current ()) f
let set_base b = Ctx.set_base (current ()) b
let now_us () = Ctx.now_us (current ())
let incr c = Ctx.incr (current ()) c
let add c n = Ctx.add (current ()) c n
let counter_value c = Ctx.counter_value (current ()) c
let set_gauge g v = Ctx.set_gauge (current ()) g v
let gauge_value g = Ctx.gauge_value (current ()) g
let observe_us h v = Ctx.observe_us (current ()) h v
let metrics_dump () = Ctx.metrics_dump (current ())
let metrics_json () = Ctx.metrics_json (current ())
let span ~cat ?args ~begin_us ~end_us name =
  Ctx.span (current ()) ~cat ?args ~begin_us ~end_us name
let instant ~cat ?args ?ts name = Ctx.instant (current ()) ~cat ?args ?ts name
let event_count () = Ctx.event_count (current ())
let trace_json () = Ctx.trace_json (current ())
let reset () = Ctx.reset (current ())
