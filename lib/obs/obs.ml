module Json = Artemis_util.Json

(* --- switches and simulated clock --- *)

let metrics_on = ref false
let tracing_on = ref false

let set_metrics b = metrics_on := b
let metrics_enabled () = !metrics_on
let set_tracing b = tracing_on := b
let tracing_enabled () = !tracing_on

let clock : (unit -> int) ref = ref (fun () -> 0)
let base_us = ref 0

let set_clock f = clock := f
let set_base b = base_us := b
let now_us () = !base_us + !clock ()

(* --- metrics registry --- *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  buckets_us : int array;  (* upper bounds, ascending; +inf is implicit *)
  counts : int array;  (* length buckets + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum_us : int;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace counters name c;
      c

let incr c = if !metrics_on then c.c_value <- c.c_value + 1
let add c n = if !metrics_on then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0. } in
      Hashtbl.replace gauges name g;
      g

let set_gauge g v = if !metrics_on then g.g_value <- v
let gauge_value g = g.g_value

let default_buckets_us =
  [| 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000; 60_000_000 |]

let histogram ?(buckets_us = default_buckets_us) name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          buckets_us;
          counts = Array.make (Array.length buckets_us + 1) 0;
          h_count = 0;
          h_sum_us = 0;
        }
      in
      Hashtbl.replace histograms name h;
      h

let observe_us h v =
  if !metrics_on then begin
    (* linear scan over <= 10 fixed bounds: no allocation, no log *)
    let n = Array.length h.buckets_us in
    let i = ref 0 in
    while !i < n && v > h.buckets_us.(!i) do
      Stdlib.incr i
    done;
    h.counts.(!i) <- h.counts.(!i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum_us <- h.h_sum_us + v
  end

let sorted_values tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let metrics_dump () =
  let buf = Buffer.create 1024 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  sorted_values counters
  |> List.sort (fun a b -> String.compare a.c_name b.c_name)
  |> List.iter (fun c -> adds "counter %s %d\n" c.c_name c.c_value);
  sorted_values gauges
  |> List.sort (fun a b -> String.compare a.g_name b.g_name)
  |> List.iter (fun g -> adds "gauge %s %s\n" g.g_name (Json.float_lit g.g_value));
  sorted_values histograms
  |> List.sort (fun a b -> String.compare a.h_name b.h_name)
  |> List.iter (fun h ->
         adds "histogram %s count %d sum_us %d" h.h_name h.h_count h.h_sum_us;
         Array.iteri
           (fun i bound -> adds " le%d:%d" bound h.counts.(i))
           h.buckets_us;
         adds " inf:%d\n" h.counts.(Array.length h.buckets_us));
  Buffer.contents buf

let metrics_json () =
  let obj fields = "{" ^ String.concat ", " fields ^ "}" in
  let counters_json =
    sorted_values counters
    |> List.sort (fun a b -> String.compare a.c_name b.c_name)
    |> List.map (fun c -> Printf.sprintf "%s: %d" (Json.quote c.c_name) c.c_value)
  in
  let gauges_json =
    sorted_values gauges
    |> List.sort (fun a b -> String.compare a.g_name b.g_name)
    |> List.map (fun g ->
           Printf.sprintf "%s: %s" (Json.quote g.g_name) (Json.float_lit g.g_value))
  in
  let histograms_json =
    sorted_values histograms
    |> List.sort (fun a b -> String.compare a.h_name b.h_name)
    |> List.map (fun h ->
           Printf.sprintf "%s: {\"count\": %d, \"sum_us\": %d, \"buckets_us\": [%s], \"counts\": [%s]}"
             (Json.quote h.h_name) h.h_count h.h_sum_us
             (String.concat ", "
                (Array.to_list (Array.map string_of_int h.buckets_us)))
             (String.concat ", "
                (Array.to_list (Array.map string_of_int h.counts))))
  in
  Printf.sprintf "{\n  \"counters\": %s,\n  \"gauges\": %s,\n  \"histograms\": %s\n}\n"
    (obj counters_json) (obj gauges_json) (obj histograms_json)

(* --- tracing --- *)

type arg = S of string | I of int | F of float

type event = {
  ph : char;  (* 'B' | 'E' | 'i' | 'M' *)
  name : string;
  cat : string;
  ts : int;
  tid : int;
  args : (string * arg) list;
}

(* events in reverse emission order; rendered (and ts-sorted by the
   viewer) at export time *)
let events : event list ref = ref []
let n_events = ref 0

(* categories get stable track ids in first-use order *)
let tracks : (string, int) Hashtbl.t = Hashtbl.create 8
let track_order : string list ref = ref []

let track cat =
  match Hashtbl.find_opt tracks cat with
  | Some id -> id
  | None ->
      let id = Hashtbl.length tracks + 1 in
      Hashtbl.replace tracks cat id;
      track_order := cat :: !track_order;
      id

let emit ph ~cat ~name ~ts ~args =
  events := { ph; name; cat; ts; tid = track cat; args } :: !events;
  Stdlib.incr n_events

let span ~cat ?(args = []) ~begin_us ~end_us name =
  if !tracing_on then begin
    (* emitted as one balanced pair; [end_us] clamps so a clock that did
       not advance still yields a well-formed zero-length span *)
    let end_us = max begin_us end_us in
    emit 'B' ~cat ~name ~ts:begin_us ~args;
    emit 'E' ~cat ~name ~ts:end_us ~args:[]
  end

let instant ~cat ?(args = []) ?ts name =
  if !tracing_on then
    let ts = match ts with Some t -> t | None -> now_us () in
    emit 'i' ~cat ~name ~ts ~args

let event_count () = !n_events

let arg_json = function
  | S s -> Json.quote s
  | I n -> string_of_int n
  | F f -> Json.float_lit f

let event_json e =
  let buf = Buffer.create 96 in
  let adds fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  adds "{\"name\": %s, \"cat\": %s, \"ph\": \"%c\", \"ts\": %d, \"pid\": 1, \"tid\": %d"
    (Json.quote e.name) (Json.quote e.cat) e.ph e.ts e.tid;
  (match e.args with
  | [] -> ()
  | args ->
      adds ", \"args\": {%s}"
        (String.concat ", "
           (List.map (fun (k, v) -> Json.quote k ^ ": " ^ arg_json v) args));
      ());
  (* instant events need a scope; "t" = thread *)
  if e.ph = 'i' then adds ", \"s\": \"t\"";
  adds "}";
  Buffer.contents buf

let trace_json () =
  let metadata =
    { ph = 'M'; name = "process_name"; cat = "__metadata"; ts = 0; tid = 0;
      args = [ ("name", S "artemis-sim") ] }
    :: (List.rev !track_order
       |> List.map (fun cat ->
              {
                ph = 'M';
                name = "thread_name";
                cat = "__metadata";
                ts = 0;
                tid = track cat;
                args = [ ("name", S cat) ];
              }))
  in
  let all = metadata @ List.rev !events in
  let total = List.length all in
  let buf = Buffer.create (128 * (total + 2)) in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (event_json e);
      if i < total - 1 then Buffer.add_string buf ",";
      Buffer.add_char buf '\n')
    all;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* --- reset --- *)

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.counts 0 (Array.length h.counts) 0;
      h.h_count <- 0;
      h.h_sum_us <- 0)
    histograms;
  events := [];
  n_events := 0;
  base_us := 0
