module Obs = Artemis_obs.Obs

type region = Runtime | Monitor | Application | Staging
type kind = Fram | Ram

exception Injected_failure of string

(* Observability: single-branch no-ops unless the registry is enabled,
   so the PR1 fast-path numbers survive (bench tracks the contract). *)
let m_writes = Obs.counter "nvm_writes"
let m_tx_writes = Obs.counter "nvm_tx_writes"
let m_tx_commits = Obs.counter "nvm_tx_commits"
let m_tx_aborts = Obs.counter "nvm_tx_aborts"
let m_power_failures = Obs.counter "nvm_power_failures"

(* Stable numbering contract for the fault-injection engine: sites are
   listed in this order, before the runtime's own sites. *)
let injection_sites =
  [
    "nvm.write.before";
    "nvm.write.after";
    "nvm.tx_write.before";
    "nvm.tx_write.after";
    "nvm.commit_tx.before";
    "nvm.commit_tx.after";
  ]

(* Test-only chaos hooks (see test/test_oracle_sensitivity.ml): each
   re-introduces a known-bad behaviour the PR2 campaigns hardened away,
   so the mutation suite can prove the oracles still detect it. *)
module Chaos = struct
  let no_write_join = ref false  (* write_join always writes through *)
  let tx_write_through = ref false  (* tx_write commits immediately *)
  let hazardous_nontx_write = ref false
  (* channel pushes bypass the task transaction (see Channel.push): the
     canonical WAR hazard the static consistency pass exists to flag *)

  let reset () =
    no_write_join := false;
    tx_write_through := false;
    hazardous_nontx_write := false
end

(* --- access recording (PR 7) ---

   The static WAR-hazard analysis observes a task body's reads and
   writes by installing a recorder and running the body once.  The
   recorder is a single optional field: the hot paths pay one branch
   when it is absent, and the access record is only allocated when a
   recording pass is active. *)

type access_op = Read_op | Write_op | Tx_write_op

type access = {
  acc_name : string;
  acc_region : region;
  acc_kind : kind;
  acc_op : access_op;
  acc_in_tx : bool;
}

(* Per-cell hooks let the store manipulate heterogeneous cells uniformly. *)
type registered = {
  reg_name : string;
  reg_region : region;
  reg_kind : kind;
  reg_bytes : int;
  reset_volatile : unit -> unit;
  digest_committed : unit -> string;
  digest_logical : unit -> string;
}

(* One transactionally-dirty cell: how to publish its pending value and
   how to drop it.  Tracking these per-transaction keeps abort and
   power-failure rollback O(dirty cells), not O(all cells).  [capture]
   (PR 10) freezes the cell's current pending value into a standalone
   redo thunk, so a checkpoint-free runtime can log the write set and
   re-apply it after the transaction's pending views are gone. *)
type dirty = {
  d_name : string;
  d_region : region;
  commit : unit -> unit;
  discard : unit -> unit;
  capture : unit -> unit -> unit;
}

type t = {
  obs : Obs.ctx;  (* recording surface; per-device since PR 5 *)
  mutable cells : registered list;  (* reverse allocation order *)
  names : (region * string, unit) Hashtbl.t;  (* duplicate detection *)
  footprints : int array;  (* (kind, region) -> declared bytes *)
  mutable volatiles : registered list;  (* Ram cells only *)
  mutable tx_open : bool;
  mutable tx_dirty : dirty list;  (* reverse write order *)
  mutable reverts : int;  (* aborts + power failures, see [revert_count] *)
  mutable tx_begin_us : int;  (* span start when tracing is enabled *)
  mutable probe : (string -> unit) option;
      (* fault-injection hook; fired around state-changing operations with
         the site label, and allowed to raise [Injected_failure] *)
  mutable recorder : (access -> unit) option;
      (* access-set recorder for the static WAR-hazard pass (PR 7) *)
}

type 'a cell = {
  store : t;
  name : string;
  region : region;
  kind : kind;
  initial : 'a;
  mutable committed : 'a;
  mutable pending : 'a option;
}

let footprint_slot kind region =
  let k = match kind with Fram -> 0 | Ram -> 1 in
  let r =
    match region with Runtime -> 0 | Monitor -> 1 | Application -> 2 | Staging -> 3
  in
  (k * 4) + r

let create ?obs () =
  {
    obs = (match obs with Some o -> o | None -> Obs.current ());
    cells = [];
    names = Hashtbl.create 64;
    footprints = Array.make 8 0;
    volatiles = [];
    tx_open = false;
    tx_dirty = [];
    reverts = 0;
    tx_begin_us = 0;
    probe = None;
    recorder = None;
  }

let obs t = t.obs
let set_probe t p = t.probe <- p
let fire t site = match t.probe with None -> () | Some p -> p site
let set_recorder t r = t.recorder <- r

let record_access c op =
  match c.store.recorder with
  | None -> ()
  | Some f ->
      f
        {
          acc_name = c.name;
          acc_region = c.region;
          acc_kind = c.kind;
          acc_op = op;
          acc_in_tx = c.store.tx_open;
        }

let cell t ~region ?(kind = Fram) ~name ~bytes init =
  if bytes < 0 then invalid_arg "Nvm.cell: negative size";
  if Hashtbl.mem t.names (region, name) then
    invalid_arg (Printf.sprintf "Nvm.cell: duplicate cell %S" name);
  Hashtbl.replace t.names (region, name) ();
  let c =
    { store = t; name; region; kind; initial = init; committed = init;
      pending = None }
  in
  let registered =
    {
      reg_name = name;
      reg_region = region;
      reg_kind = kind;
      reg_bytes = bytes;
      reset_volatile = (fun () -> if kind = Ram then c.committed <- c.initial);
      digest_committed =
        (fun () -> Digest.string (Marshal.to_string c.committed [ Marshal.Closures ]));
      digest_logical =
        (fun () ->
          let v = match c.pending with Some p -> p | None -> c.committed in
          Digest.string (Marshal.to_string v [ Marshal.Closures ]));
    }
  in
  t.cells <- registered :: t.cells;
  t.footprints.(footprint_slot kind region) <-
    t.footprints.(footprint_slot kind region) + bytes;
  if kind = Ram then t.volatiles <- registered :: t.volatiles;
  c

let read c =
  (match c.store.recorder with None -> () | Some _ -> record_access c Read_op);
  match c.pending with Some v -> v | None -> c.committed

let write c v =
  (match (c.kind, c.pending) with
  | Fram, Some _ ->
      invalid_arg
        (Printf.sprintf "Nvm.write: cell %S has an uncommitted tx value" c.name)
  | (Fram | Ram), _ -> ());
  record_access c Write_op;
  Obs.Ctx.incr c.store.obs m_writes;
  fire c.store "nvm.write.before";
  c.committed <- v;
  fire c.store "nvm.write.after"

let begin_tx t =
  if t.tx_open then invalid_arg "Nvm.begin_tx: transaction already open";
  t.tx_open <- true;
  t.tx_dirty <- [];
  if Obs.Ctx.tracing_enabled t.obs then t.tx_begin_us <- Obs.Ctx.now_us t.obs

(* The span covers begin_tx to the close; it is emitted as one balanced
   pair at the close so a crash inside the transaction (which aborts via
   [power_failure]) still produces a well-formed trace. *)
let close_tx_span t name =
  if Obs.Ctx.tracing_enabled t.obs then
    Obs.Ctx.span t.obs ~cat:"nvm" ~begin_us:t.tx_begin_us
      ~end_us:(Obs.Ctx.now_us t.obs) name

let tx_write c v =
  if not c.store.tx_open then invalid_arg "Nvm.tx_write: no open transaction";
  if c.kind = Ram then
    invalid_arg (Printf.sprintf "Nvm.tx_write: cell %S is volatile" c.name);
  record_access c Tx_write_op;
  Obs.Ctx.incr c.store.obs m_tx_writes;
  fire c.store "nvm.tx_write.before";
  (if !Chaos.tx_write_through then c.committed <- v
   else begin
     (match c.pending with
     | None ->
         let commit () =
           (match c.pending with Some p -> c.committed <- p | None -> ());
           c.pending <- None
         in
         let discard () = c.pending <- None in
         let capture () =
           let v = match c.pending with Some p -> p | None -> c.committed in
           fun () -> c.committed <- v
         in
         c.store.tx_dirty <-
           { d_name = c.name; d_region = c.region; commit; discard; capture }
           :: c.store.tx_dirty
     | Some _ -> ());
     c.pending <- Some v
   end);
  fire c.store "nvm.tx_write.after"

(* Join the ambient transaction if one is open, else write through.  Used
   by code that must be durable in isolation but atomic when an enclosing
   step wraps several updates into one commit (immortal monitor steps,
   path restarts). *)
let write_join c v =
  if c.store.tx_open && c.kind = Fram && not !Chaos.no_write_join then
    tx_write c v
  else write c v

let commit_tx t =
  if not t.tx_open then invalid_arg "Nvm.commit_tx: no open transaction";
  fire t "nvm.commit_tx.before";
  List.iter (fun d -> d.commit ()) (List.rev t.tx_dirty);
  t.tx_dirty <- [];
  t.tx_open <- false;
  Obs.Ctx.incr t.obs m_tx_commits;
  close_tx_span t "tx";
  fire t "nvm.commit_tx.after"

(* --- checkpoint-free (Alpaca-style) commit support (PR 10) ---

   A two-phase runtime first freezes the open transaction's write set
   into standalone redo thunks ([capture_tx]), seals them behind a
   durable log cell, then closes the transaction without publishing
   anything ([drop_tx]) and replays the thunks onto committed state.
   The thunks hold the captured values, not the cells' pending views,
   so they survive the rollback a power failure performs on the open
   transaction. *)

let capture_tx t =
  if not t.tx_open then invalid_arg "Nvm.capture_tx: no open transaction";
  List.rev t.tx_dirty
  |> List.map (fun d -> (d.d_name, d.d_region, d.capture ()))

let drop_tx t =
  if not t.tx_open then invalid_arg "Nvm.drop_tx: no open transaction";
  List.iter (fun d -> d.discard ()) t.tx_dirty;
  t.tx_dirty <- [];
  t.tx_open <- false;
  (* the write set was captured for redo: logically this is a commit *)
  Obs.Ctx.incr t.obs m_tx_commits;
  close_tx_span t "tx"

let abort_tx t =
  if not t.tx_open then invalid_arg "Nvm.abort_tx: no open transaction";
  t.reverts <- t.reverts + 1;
  List.iter (fun d -> d.discard ()) t.tx_dirty;
  t.tx_dirty <- [];
  t.tx_open <- false;
  Obs.Ctx.incr t.obs m_tx_aborts;
  close_tx_span t "tx_aborted"

let in_tx t = t.tx_open

let power_failure t =
  Obs.Ctx.incr t.obs m_power_failures;
  t.reverts <- t.reverts + 1;
  if t.tx_open then abort_tx t;
  List.iter (fun r -> r.reset_volatile ()) t.volatiles

let revert_count t = t.reverts

let footprint t ~kind ~region = t.footprints.(footprint_slot kind region)

let cell_names t ~region =
  List.rev t.cells
  |> List.filter (fun r -> r.reg_region = region)
  |> List.map (fun r -> r.reg_name)

let snapshot_region t ~region =
  List.rev t.cells
  |> List.filter (fun r -> r.reg_region = region)
  |> List.map (fun r -> (r.reg_name, r.digest_committed ()))

let snapshot_region_logical t ~region =
  List.rev t.cells
  |> List.filter (fun r -> r.reg_region = region)
  |> List.map (fun r -> (r.reg_name, r.digest_logical ()))
