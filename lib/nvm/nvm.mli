(** Simulated non-volatile memory (FRAM) with task-transaction semantics.

    The MSP430FR-class targets of the paper mix a small volatile SRAM with a
    large non-volatile FRAM.  This module reproduces the two memory
    behaviours the ARTEMIS semantics depend on:

    - {b write-through persistence} for monitor state ("immortal" variables,
      Section 4.2.3): a {!write} survives any later power failure;
    - {b transactional task regions} (Section 3.1): writes a task performs
      via {!tx_write} are buffered and either committed atomically at task
      end or discarded by a power failure, giving tasks all-or-nothing
      semantics.

    Every cell declares its byte size and owning region so that the Table 2
    memory accounting can be computed from the live store.  Bookkeeping is
    O(1) per operation: duplicate detection and footprint accounting use a
    [(region, name)] index maintained at allocation, and transaction
    rollback touches only cells with pending writes (power failures
    additionally reset the volatile cells, tracked separately). *)

type t
(** A simulated memory store (one per device). *)

type region =
  | Runtime      (** cells owned by the intermittent runtime *)
  | Monitor      (** cells owned by generated monitors *)
  | Application  (** cells owned by application tasks (channels, outputs) *)
  | Staging      (** cells owned by the live-adaptation protocol: property
                     updates received over the radio are staged here before
                     the generation flip makes them active (PR 4) *)

type kind =
  | Fram  (** non-volatile: survives power failures *)
  | Ram   (** volatile: reset to its initial value on power failure *)

type 'a cell

exception Injected_failure of string
(** Raised by a fault-injection probe (see {!set_probe}) to model a power
    failure at the instrumented point whose label it carries.  The
    intermittent runtime catches it, runs the device's power-failure
    recovery, and resumes from persistent state. *)

val injection_sites : string list
(** The labels this module's probe can fire, in the canonical numbering
    order used by the fault-injection engine: before/after each {!write},
    {!tx_write} and {!commit_tx}. *)

val create : ?obs:Artemis_obs.Obs.ctx -> unit -> t
(** [obs] is the observability context this store records into; defaults
    to the calling domain's current context ([Obs.current ()]). *)

val obs : t -> Artemis_obs.Obs.ctx
(** The recording surface shared by the store's owning device; the
    instrumented libraries ([lib/monitor], [lib/immortal], [lib/adapt])
    fetch it from here so one device's activity lands in one context. *)

val set_probe : t -> (string -> unit) option -> unit
(** Install (or clear) the fault-injection probe.  The probe is invoked
    with the site label around every state-changing operation and may
    raise {!Injected_failure} to crash the store's owner at that point.
    Recovery paths ({!power_failure}, {!abort_tx}) and reads never fire
    the probe. *)

type access_op =
  | Read_op
  | Write_op     (** direct persistent write ({!write}) *)
  | Tx_write_op  (** transactionally buffered write ({!tx_write}) *)

type access = {
  acc_name : string;
  acc_region : region;
  acc_kind : kind;
  acc_op : access_op;
  acc_in_tx : bool;  (** a task transaction was open at the access *)
}
(** One cell access, as seen by a recording pass (PR 7). *)

val set_recorder : t -> (access -> unit) option -> unit
(** Install (or clear) the access recorder.  While installed, every
    {!read}, {!write} and {!tx_write} reports its cell and operation;
    the static WAR-hazard analysis ({!Artemis_consistency.War}) uses
    this to collect per-task access sets by running each task body once.
    The hot paths pay a single branch when no recorder is installed. *)

val cell :
  t -> region:region -> ?kind:kind -> name:string -> bytes:int -> 'a -> 'a cell
(** [cell t ~region ~name ~bytes init] allocates a cell holding [init].
    [kind] defaults to [Fram].  [bytes] is the declared footprint used for
    accounting only (the OCaml value itself is stored boxed).
    @raise Invalid_argument if [bytes < 0] or a cell named [name] already
    exists in [region]. *)

val read : 'a cell -> 'a
(** Current visible value: the pending transactional value if one exists
    (read-your-own-writes inside a task), else the committed value. *)

val write : 'a cell -> 'a -> unit
(** Direct persistent write, visible and durable immediately.  This is the
    write used by monitors and the runtime bookkeeping.
    @raise Invalid_argument on a [Fram] cell with an uncommitted
    transactional value (mixing the two disciplines on one cell within a
    task would make rollback ill-defined). *)

val write_join : 'a cell -> 'a -> unit
(** [write] when no transaction is open on the cell's store; [tx_write]
    when one is (volatile cells always write through).  Lets multi-cell
    updates (a monitor step, a path restart) become atomic when an
    enclosing transaction wraps them, without changing their stand-alone
    write-through semantics. *)

val begin_tx : t -> unit
(** Open a task transaction. @raise Invalid_argument if one is open. *)

val tx_write : 'a cell -> 'a -> unit
(** Buffered write, committed by {!commit_tx} and discarded by
    {!abort_tx}/{!power_failure}.
    @raise Invalid_argument if no transaction is open, or on a [Ram]
    cell (volatile cells are not transactional). *)

val commit_tx : t -> unit
(** Atomically apply all buffered writes.
    @raise Invalid_argument if no transaction is open. *)

val abort_tx : t -> unit
(** Discard all buffered writes.
    @raise Invalid_argument if no transaction is open. *)

val capture_tx : t -> (string * region * (unit -> unit)) list
(** Freeze the open transaction's write set into a redo log: one
    [(name, region, apply)] entry per dirty cell, in first-write order,
    where [apply] publishes the value the cell's pending view held at
    capture time.  The thunks are self-contained - they keep working
    after the transaction is dropped or rolled back by a power failure,
    and re-applying them is idempotent.  This is the logging half of an
    Alpaca-style two-phase (log-then-swap) commit (PR 10).
    @raise Invalid_argument if no transaction is open. *)

val drop_tx : t -> unit
(** Close the open transaction {e without} publishing or reverting: the
    pending views are discarded because a {!capture_tx} redo log is now
    the authoritative carrier of the write set.  Counts as a logical
    commit in the metrics, not as a revert ({!revert_count} is
    untouched - nothing observable was rolled back).
    @raise Invalid_argument if no transaction is open. *)

val in_tx : t -> bool

val power_failure : t -> unit
(** Model a power failure: abort any open transaction and reset every
    [Ram] cell to its initial value.  [Fram] committed values persist. *)

val revert_count : t -> int
(** Number of state-revert events (transaction aborts, power failures)
    since the store was created.  Monotone: {b both} {!abort_tx} and
    {!power_failure} bump it (a power failure with an open transaction
    bumps twice; consumers must compare for inequality, never count).
    Two consumers rely on this:
    - register-caching engines (the table monitor backend) skip
      re-reading their cells on the steady-state path: registers can
      only have diverged after a revert or an out-of-band cell write,
      and the writers of the latter invalidate explicitly;
    - the freshness tracker ({!Artemis_consistency.Freshness}) snapshots
      it when a timestamp is taken inside an open transaction, so a
      stamp whose enclosing transaction was reverted - by an explicit
      abort as much as by a power failure - can never launder a stale
      input as fresh. *)

val footprint : t -> kind:kind -> region:region -> int
(** Total declared bytes of the cells of that kind and region. *)

val cell_names : t -> region:region -> string list
(** Names of allocated cells, in allocation order (diagnostics). *)

val snapshot_region : t -> region:region -> (string * string) list
(** [(name, digest)] of every cell's {e committed} value in the region,
    in allocation order.  Pending transactional values are excluded, so
    two snapshots are equal iff the durable states are.  Used by the
    fault-injection oracles (task-transaction atomicity). *)

val snapshot_region_logical : t -> region:region -> (string * string) list
(** Like {!snapshot_region}, but digesting each cell's {e visible} value
    (the pending transactional view when one exists).  At an Alpaca
    commit point this is the post-state the sealed redo log promises;
    the task-atomicity oracle compares the eventual committed state
    against it (PR 10). *)

(** Test-only chaos hooks for the oracle-sensitivity (mutation) suite:
    each flag re-introduces a known-bad behaviour so the faultsim
    oracles can be shown to fail, not just pass.  All default to
    [false]; production code must never set them. *)
module Chaos : sig
  val no_write_join : bool ref
  (** {!write_join} always writes through, never joining the open
      transaction - monitor updates inside an immortal step stop being
      atomic with the program-counter advance (pre-PR2 bug). *)

  val tx_write_through : bool ref
  (** {!tx_write} publishes immediately instead of buffering - task
      writes stop being all-or-nothing, so a mid-task crash leaves a
      half-executed task visible (defeats task-transaction atomicity). *)

  val hazardous_nontx_write : bool ref
  (** [Channel.push] writes the channel cell directly instead of through
      the task transaction - the classic read-then-write (WAR) hazard:
      a crash after the push but before task commit leaves the pushed
      item durable, and the re-executed task pushes it again.  The
      static WAR pass ({!Artemis_consistency.War}) must flag it; the
      task-atomicity oracle catches it dynamically. *)

  val reset : unit -> unit
  (** Clear every flag. *)
end
