(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) on the simulated testbed, then micro-benchmarks
   each experiment kernel with Bechamel (one Test.make per table/figure).

   Absolute numbers come from the simulator's calibrated cost model; the
   reproduction target is the paper's shape: who wins, by how much, where
   the crossovers are.  EXPERIMENTS.md records paper-vs-measured.

   Usage: main.exe [--fast] [--json FILE] [--skip-reproduce]
     --fast            trim bechamel quota and sweep sizes (CI smoke run)
     --json FILE       write machine-readable results (kernel timings,
                       engine speedups, scalability sweeps) to FILE
     --skip-reproduce  skip the figure/table regeneration *)

open Artemis_experiments

let section title body =
  Printf.printf "\n=== %s ===\n%s\n" title body;
  flush stdout

let reproduce_all () =
  section "Figure 12: total execution time vs charging time (1-10 min)"
    (Fig12.render (Fig12.run ()));
  section "Figure 13: ARTEMIS prevents non-termination (6 min charging)"
    (Fig13.render (Fig13.run ()));
  let fig14 = Fig14.run () in
  section "Figure 14: execution time on continuous power (seconds)"
    (Fig14.render fig14);
  section "Figure 15: overhead breakdown on continuous power (milliseconds)"
    (Fig14.render_overheads fig14);
  section "Figure 16: energy consumption per completed run"
    (Fig16.render (Fig16.run ()));
  section "Table 2: memory requirements (bytes)" (Table2.render (Table2.run ()));
  section "Table 3: feature comparison with prior art" (Table3.render ());
  section
    "Ablation A: monitor deployment alternatives (Section 7), health benchmark"
    (Ablation.render_deployments (Ablation.deployments ()));
  section "Ablation B: collect-counter semantics (DESIGN.md decision 1)"
    (Ablation.render_collect (Ablation.collect_semantics ()));
  section
    "Baseline: checkpoint-based system (TICS-style) on the benchmark workload"
    (Baseline_checkpoint.render (Baseline_checkpoint.run ()));
  section "Timekeeper quality vs property enforcement (6 min charging)"
    (Timekeeper_sweep.render (Timekeeper_sweep.run ()));
  section "Harvester study: emergent charging delays (duty-cycled harvester)"
    (Harvester_study.render (Harvester_study.run ()));
  section "Scalability: monitor overhead vs deployed property count (P3)"
    (Scalability.render (Scalability.run ()));
  section "Scalability: non-watching properties (task-indexed dispatch)"
    (Scalability.render_non_watching (Scalability.run_non_watching ()));
  section "Yield study: reactive soil station, 20 rounds per harvest level"
    (Yield_study.render (Yield_study.run ()));
  section "Adaptation study: live property updates vs full reprogramming"
    (Adaptation_study.render (Adaptation_study.run ()))

(* --- engine comparison kernels (interpreted AST walker vs deploy-time
   compiled closures) --- *)

module A = Artemis
module F = A.Fsm.Ast
module Interp = A.Fsm.Interp
module Compile = A.Fsm.Compile
module Table = A.Fsm.Table

(* a synthetic trace over the benchmark's real task set; every end event
   carries the payloads any machine might read *)
let kernel_trace =
  let tasks =
    [ "bodyTemp"; "calcAvg"; "heartRate"; "accel"; "classify"; "micSense";
      "filter"; "send" ]
  in
  List.concat
    (List.mapi
       (fun i task ->
         let ts n = A.Time.of_ms (200 * ((2 * i) + n)) in
         [
           { Interp.kind = Interp.Start; task; timestamp = ts 0; path = 1;
             dep_data = []; energy_mj = 20. };
           { Interp.kind = Interp.End; task; timestamp = ts 1; path = 1;
             dep_data = [ ("avgTemp", 36.5) ]; energy_mj = 19. };
         ])
       tasks)

(* per-machine stepping: one benchmark machine, memory-backed stores.
   Arrays and counted loops, not List.iter2: the engines under test run
   in the tens of nanoseconds per step, so the harness must not spend a
   pointer chase per machine. *)
let fsm_step_kernels () =
  let machines = Scalability.replicated_machines 1 in
  let compiled = List.map Compile.compile machines in
  let tables = List.map Table.compile machines in
  let machines_a = Array.of_list machines in
  let compiled_a = Array.of_list compiled in
  let tables_a = Array.of_list tables in
  let istores = Array.of_list (List.map Interp.memory_store machines) in
  let cstores = Array.of_list (List.map Compile.memory_store compiled) in
  let tinsts = Array.of_list (List.map Table.instance tables) in
  let trace = Array.of_list kernel_trace in
  let nev = Array.length trace and nm = Array.length machines_a in
  let interp () =
    for e = 0 to nev - 1 do
      let ev = trace.(e) in
      for j = 0 to nm - 1 do
        ignore (Interp.step machines_a.(j) istores.(j) ev)
      done
    done
  in
  let comp () =
    for e = 0 to nev - 1 do
      let ev = trace.(e) in
      for j = 0 to nm - 1 do
        ignore (Compile.step compiled_a.(j) cstores.(j) ev)
      done
    done
  in
  let tbl () =
    for e = 0 to nev - 1 do
      let ev = trace.(e) in
      for j = 0 to nm - 1 do
        ignore (Table.step tables_a.(j) tinsts.(j) ev)
      done
    done
  in
  (interp, comp, tbl)

(* suite-level dispatch at the paper's 8x replication: the seed design
   (interpreted machines, every monitor stepped per event) against the
   fast path (compiled closures, task-indexed dispatch) *)
let dispatch8_kernels () =
  let machines = Scalability.replicated_machines 8 in
  let s_interp =
    Artemis_monitor.Suite.create ~engine:A.Monitor.Interpreted (A.Nvm.create ())
      machines
  in
  let s_comp =
    Artemis_monitor.Suite.create ~engine:A.Monitor.Compiled (A.Nvm.create ())
      machines
  in
  let s_tbl =
    Artemis_monitor.Suite.create ~engine:A.Monitor.Table (A.Nvm.create ())
      machines
  in
  let trace = Array.of_list kernel_trace in
  let nev = Array.length trace in
  let interp () =
    for e = 0 to nev - 1 do
      ignore (A.Suite.step_all_unindexed s_interp trace.(e))
    done
  in
  let comp () =
    for e = 0 to nev - 1 do
      ignore (A.Suite.step_all s_comp trace.(e))
    done
  in
  let tbl () =
    for e = 0 to nev - 1 do
      ignore (A.Suite.step_all s_tbl trace.(e))
    done
  in
  (interp, comp, tbl)

(* observability disabled-overhead contract: the same dispatch8 compiled
   kernel with the metrics registry off (the default) and on.  The off
   kernel must stay within noise of PR2's dispatch8-compiled number; the
   on/off delta prices the counter bumps. *)
let obs_kernels () =
  let machines = Scalability.replicated_machines 8 in
  let mk () =
    Artemis_monitor.Suite.create ~engine:A.Monitor.Compiled (A.Nvm.create ())
      machines
  in
  let s_off = mk () and s_on = mk () in
  let trace = Array.of_list kernel_trace in
  let nev = Array.length trace in
  let off () =
    for e = 0 to nev - 1 do
      ignore (A.Suite.step_all s_off trace.(e))
    done
  in
  let on () =
    A.Obs.set_metrics true;
    for e = 0 to nev - 1 do
      ignore (A.Suite.step_all s_on trace.(e))
    done;
    A.Obs.set_metrics false
  in
  (off, on)

(* The contract numbers are *ratios* of same-scale kernels, and the
   ratio of two independently fitted OLS estimates drifts more than the
   quantities under test: sequential bechamel runs reported 5-22%
   phantom obs overhead on a delta that interleaving shows is under 2%,
   and swung compiled fsm-step by 40% between runs while the table
   number held still.  So every ratio in the report is measured as a
   set: alternating rounds over the same kernels, median across rounds
   - frequency and GC drift then land on all sides of each comparison
   equally.  Bechamel's per-kernel estimates stay in kernels_ns. *)
let paired_medians ~rounds ~iters kernels =
  let n = Array.length kernels in
  let sample f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9
  in
  for _ = 1 to max 1 (iters / 10) do
    Array.iter (fun f -> f ()) kernels
  done;
  let samples = Array.make_matrix n rounds 0. in
  for r = 0 to rounds - 1 do
    for k = 0 to n - 1 do
      samples.(k).(r) <- sample kernels.(k)
    done
  done;
  Array.map
    (fun row ->
      let b = Array.copy row in
      Array.sort compare b;
      b.(rounds / 2))
    samples

let measure_obs_paired ~fast () =
  let off, on = obs_kernels () in
  let rounds = if fast then 5 else 11 in
  let iters = if fast then 2_000 else 10_000 in
  match paired_medians ~rounds ~iters [| off; on |] with
  | [| o; n |] -> (o, n)
  | _ -> assert false

(* input-freshness oracle overhead (PR 7): the same depth-1 exhaustive
   campaign with and without the tracker attached.  quickstart-fresh is
   quickstart plus the freshness tracker on the record chokepoint, so
   the paired ratio prices the oracle's stamp/check/violation work on
   the campaign hot loop - the acceptance gate is <= 5%. *)
let freshness_kernels () =
  let module F = Artemis_faultsim.Faultsim in
  let module S = Artemis_faultsim.Scenario in
  let plain () = ignore (F.exhaustive S.quickstart ~seed:42 ~depth:1) in
  let fresh () = ignore (F.exhaustive S.quickstart_fresh ~seed:42 ~depth:1) in
  (plain, fresh)

let measure_freshness_paired ~fast () =
  let plain, fresh = freshness_kernels () in
  (* The quantity gated in CI is the ratio of two ~10 ms campaigns, so
     even fast mode keeps the full sampling budget (~2 s total): at
     rounds=5/iters=3 the paired median still swung about +-4 pp,
     straddling the 5% gate. *)
  ignore fast;
  let rounds = 15 and iters = 30 in
  match paired_medians ~rounds ~iters [| plain; fresh |] with
  | [| p; f |] -> (p, f)
  | _ -> assert false

type engine_paired = {
  pair : string;
  interpreted_ns : float;
  compiled_ns : float;
  table_ns : float;
}

let measure_engines_paired ~fast () =
  let rounds = if fast then 5 else 11 in
  let iters = if fast then 500 else 3_000 in
  let measure pair (i, c, t) =
    match paired_medians ~rounds ~iters [| i; c; t |] with
    | [| i_ns; c_ns; t_ns |] ->
        { pair; interpreted_ns = i_ns; compiled_ns = c_ns; table_ns = t_ns }
    | _ -> assert false
  in
  [
    measure "engine/fsm-step" (fsm_step_kernels ());
    measure "engine/dispatch8" (dispatch8_kernels ());
  ]

(* the live-adaptation hot path (PR 4): deliver one property update to a
   freshly deployed health suite - deserialize, validate against the app,
   compile the replacement, migrate persistent state, flip generations *)
let adapt_apply_kernel () =
  let nvm0 = A.Nvm.create () in
  let app, _ = A.Health_app.make nvm0 in
  let machines = A.compile_exn ~app A.Health_app.spec_text in
  let update =
    A.Adapt.spec_update ~id:1 ~remove:[ "maxDuration_send" ]
      "send: { MITD: 4min dpTask: accel onFail: restartPath maxAttempt: 3 \
       onFail: skipPath Path: 2; }"
  in
  fun () ->
    let nvm = A.Nvm.create () in
    let suite = Artemis_monitor.Suite.create nvm machines in
    A.Suite.hard_reset suite;
    let mgr = A.Adapt.create nvm ~app suite in
    ignore (A.Adapt.stage mgr update);
    match A.Adapt.apply mgr with
    | A.Adapt.Applied _ -> ()
    | A.Adapt.Idle | A.Adapt.Rejected _ -> assert false

(* the PR 9 static pass: lower every health property through the table
   engine and bound one monitor call against the whole suite - the cost
   an OTA validate pays per admission check *)
let energy_bound_kernel () =
  let nvm = A.Nvm.create () in
  let app, _ = A.Health_app.make nvm in
  let machines = A.compile_exn ~app A.Health_app.spec_text in
  let model = A.Cost_model.default in
  fun () ->
    ignore
      (A.Energy_analysis.suite_call_bound ~model
         (List.map (A.Energy_analysis.property_bound ~model) machines))

(* --- parallel campaign runner (PR 5): wall-clock of the depth-2
   quickstart exhaustive campaign at 1/2/4/8 worker domains.  Every
   jobs setting must produce a report byte-identical to sequential -
   the kernel asserts it, so a determinism regression fails the bench
   rather than silently skewing the numbers. *)

type par_row = { pjobs : int; wall_s : float; identical : bool }

let par_campaign ~fast () =
  let depth = if fast then 1 else 2 in
  let timed jobs =
    let t0 = Unix.gettimeofday () in
    let c =
      Artemis_faultsim.Faultsim.exhaustive ~jobs
        Artemis_faultsim.Scenario.quickstart ~seed:42 ~depth
    in
    (c, Unix.gettimeofday () -. t0)
  in
  let c1, w1 = timed 1 in
  let base_json = Artemis_faultsim.Faultsim.campaign_to_json c1 in
  let rows =
    { pjobs = 1; wall_s = w1; identical = true }
    :: List.map
         (fun jobs ->
           let c, w = timed jobs in
           {
             pjobs = jobs;
             wall_s = w;
             identical =
               String.equal base_json
                 (Artemis_faultsim.Faultsim.campaign_to_json c);
           })
         [ 2; 4; 8 ]
  in
  (depth, List.length c1.Artemis_faultsim.Faultsim.runs, rows)

let print_par_campaign (depth, nruns, rows) =
  Printf.printf
    "\n=== par-campaign: quickstart depth-%d (%d runs), %d core(s) ===\n" depth
    nruns
    (Artemis.Par.recommended_jobs ());
  let w1 = (List.hd rows).wall_s in
  List.iter
    (fun r ->
      Printf.printf "jobs %d: %6.3f s  (%.2fx)%s\n" r.pjobs r.wall_s
        (if r.wall_s > 0. then w1 /. r.wall_s else 0.)
        (if r.identical then "" else "  REPORT MISMATCH"))
    rows;
  if List.for_all (fun r -> r.identical) rows then
    print_endline "report byte-identical across all job counts"
  else begin
    prerr_endline "par-campaign: parallel report differs from sequential";
    exit 1
  end;
  flush stdout

(* --- fleet runner (PR 8): wall-clock of a quickstart device fleet at
   jobs 1 vs auto, byte-identity asserted like the campaign kernel.
   Chunking is automatic, so this also exercises the coarse-claim
   scheduling path the campaign kernel (explicit runs) shares. *)

type fleet_row = { fjobs : int; fwall_s : float; fidentical : bool }

let fleet_bench ~fast () =
  let seeds = if fast then 64 else 5_000 in
  let spec =
    match
      Fleet.spec_of_json
        (Printf.sprintf
           {|{"name": "bench", "scenarios": ["quickstart"],
              "seeds": {"count": %d}, "harvesters": ["default", "fixed:5s"]}|}
           seeds)
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  let report_bytes report =
    let path = Filename.temp_file "fleet_bench" ".json" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_bin path (fun oc ->
            Fleet.output_report_json ~devices:true oc report);
        In_channel.with_open_bin path In_channel.input_all)
  in
  let timed jobs =
    let t0 = Unix.gettimeofday () in
    let r = Fleet.run ~jobs spec in
    (r, Unix.gettimeofday () -. t0)
  in
  let r1, w1 = timed 1 in
  let base = report_bytes r1 in
  let auto = Artemis.Par.recommended_jobs () in
  let rows =
    { fjobs = 1; fwall_s = w1; fidentical = true }
    :: List.map
         (fun jobs ->
           let r, w = timed jobs in
           { fjobs = jobs; fwall_s = w;
             fidentical = String.equal base (report_bytes r) })
         (List.sort_uniq compare [ 2; auto ] |> List.filter (fun j -> j > 1))
  in
  (Fleet.spec_size spec, rows)

let print_fleet_bench (devices, rows) =
  Printf.printf "\n=== fleet: quickstart x %d devices, %d core(s) ===\n" devices
    (Artemis.Par.recommended_jobs ());
  let w1 = (List.hd rows).fwall_s in
  List.iter
    (fun r ->
      Printf.printf "jobs %d: %6.3f s  (%.2fx)%s\n" r.fjobs r.fwall_s
        (if r.fwall_s > 0. then w1 /. r.fwall_s else 0.)
        (if r.fidentical then "" else "  REPORT MISMATCH"))
    rows;
  if List.for_all (fun r -> r.fidentical) rows then
    print_endline "fleet report byte-identical across all job counts"
  else begin
    prerr_endline "fleet: parallel report differs from sequential";
    exit 1
  end;
  flush stdout

(* --- Bechamel micro-benchmarks --- *)

open Bechamel
open Toolkit

let stagedf f = Staged.stage f

let experiment_tests =
  Test.make_grouped ~name:"experiments"
    [
      Test.make ~name:"fig12-one-delay"
        (stagedf (fun () -> ignore (Fig12.run ~delays:[ 2 ] ())));
      Test.make ~name:"fig13-timeline"
        (stagedf (fun () -> ignore (Fig13.run ~delay_min:6 ())));
      Test.make ~name:"fig14-fig15-continuous"
        (stagedf (fun () -> ignore (Fig14.run ())));
      Test.make ~name:"fig16-energy-2min"
        (stagedf (fun () ->
             ignore
               (Fig16.run
                  ~scenarios:
                    [
                      {
                        Fig16.label = "2 min";
                        supply = Config.Intermittent (Artemis.Time.of_min 2);
                      };
                    ]
                  ())));
      Test.make ~name:"table2-memory" (stagedf (fun () -> ignore (Table2.run ())));
      Test.make ~name:"ablation-deployments"
        (stagedf (fun () -> ignore (Ablation.deployments ())));
      Test.make ~name:"ablation-collect"
        (stagedf (fun () -> ignore (Ablation.collect_semantics ())));
      Test.make ~name:"baseline-checkpoint"
        (stagedf (fun () -> ignore (Baseline_checkpoint.run ~delays:[ 1 ] ())));
      Test.make ~name:"timekeeper-sweep"
        (stagedf (fun () -> ignore (Timekeeper_sweep.run ())));
      Test.make ~name:"harvester-study"
        (stagedf (fun () -> ignore (Harvester_study.run ~rates_uw:[ 200. ] ())));
      Test.make ~name:"scalability"
        (stagedf (fun () -> ignore (Scalability.run ~factors:[ 2 ] ())));
      Test.make ~name:"yield-study"
        (stagedf (fun () -> ignore (Yield_study.run ~rounds:3 ~rates_uw:[ 100. ] ())));
      Test.make ~name:"table3-features" (stagedf (fun () -> ignore (Table3.render ())));
    ]

let engine_tests =
  let fsm_i, fsm_c, fsm_t = fsm_step_kernels () in
  let d8_i, d8_c, d8_t = dispatch8_kernels () in
  let obs_off, obs_on = obs_kernels () in
  Test.make_grouped ~name:"engine"
    [
      Test.make ~name:"fsm-step-interpreted" (stagedf fsm_i);
      Test.make ~name:"fsm-step-compiled" (stagedf fsm_c);
      Test.make ~name:"fsm-step-table" (stagedf fsm_t);
      Test.make ~name:"dispatch8-interpreted" (stagedf d8_i);
      Test.make ~name:"dispatch8-compiled" (stagedf d8_c);
      Test.make ~name:"dispatch8-table" (stagedf d8_t);
      Test.make ~name:"obs-dispatch8-off" (stagedf obs_off);
      Test.make ~name:"obs-dispatch8-on" (stagedf obs_on);
      (* the fault-injection engine's hot loop: a full depth-1 exhaustive
         campaign (12 injected runs + baseline + oracles) on quickstart *)
      Test.make ~name:"faultsim-depth1-exhaustive"
        (stagedf (fun () ->
             ignore
               (Artemis_faultsim.Faultsim.exhaustive
                  Artemis_faultsim.Scenario.quickstart ~seed:42 ~depth:1)));
      (* the same campaign with the input-freshness tracker attached *)
      Test.make ~name:"faultsim-depth1-fresh"
        (stagedf (fun () ->
             ignore
               (Artemis_faultsim.Faultsim.exhaustive
                  Artemis_faultsim.Scenario.quickstart_fresh ~seed:42 ~depth:1)));
      Test.make ~name:"adapt-apply" (stagedf (adapt_apply_kernel ()));
      Test.make ~name:"energy-bound-health" (stagedf (energy_bound_kernel ()));
      (* the PR 10 runtime matrix: quickstart under all five task
         backends with verdict-stream comparison - the differential
         conformance check a release pays per scenario.  Agreement is
         asserted, so a semantic divergence fails the bench rather than
         skewing the number. *)
      Test.make ~name:"matrix-compare"
        (stagedf (fun () ->
             let r =
               Artemis_faultsim.Matrix.run Artemis_faultsim.Scenario.quickstart
                 ~seed:42
             in
             assert r.Artemis_faultsim.Matrix.agreement));
    ]

let run_bechamel ~fast tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let quota = Time.second (if fast then 0.1 else 0.5) in
  let cfg = Benchmark.cfg ~limit:200 ~quota ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

let estimate_ns results name =
  match Hashtbl.find_opt results name with
  | None -> None
  | Some ols -> (
      match Analyze.OLS.estimates ols with Some [ e ] -> Some e | _ -> None)

let print_results header results =
  Printf.printf "\n=== %s (ns per kernel run) ===\n" header;
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Printf.sprintf "%.0f ns" e
        | Some _ | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf " (r2=%.3f)" r
        | None -> ""
      in
      Printf.printf "%-32s %s%s\n" name estimate r2)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  flush stdout

(* --- machine-readable output (hand-rolled JSON; no deps) --- *)

(* table-vs-compiled is the PR6 acceptance ratio; all three engine
   numbers here come from the paired measurement, not bechamel *)
let json_of_engine (e : engine_paired) =
  Printf.sprintf
    {|    %S: { "interpreted_ns": %.0f, "compiled_ns": %.0f, "speedup": %.2f, "table_ns": %.0f, "table_speedup": %.2f }|}
    e.pair e.interpreted_ns e.compiled_ns
    (e.interpreted_ns /. e.compiled_ns)
    e.table_ns
    (e.compiled_ns /. e.table_ns)

let json_of_scalability rows =
  String.concat ",\n"
    (List.map
       (fun (r : Scalability.row) ->
         Printf.sprintf
           {|    { "copies": %d, "monitors": %d, "monitor_ms": %.3f, "app_s": %.3f, "monitor_fram": %d }|}
           r.Scalability.copies r.Scalability.monitors r.Scalability.monitor_ms
           r.Scalability.app_s r.Scalability.monitor_fram)
       rows)

let json_of_non_watching rows =
  String.concat ",\n"
    (List.map
       (fun (r : Scalability.non_watching_row) ->
         Printf.sprintf
           {|    { "extra": %d, "monitors": %d, "monitor_ms": %.3f, "monitor_fram": %d }|}
           r.Scalability.extra r.Scalability.total_monitors
           r.Scalability.nw_monitor_ms r.Scalability.nw_monitor_fram)
       rows)

(* Every kernel estimate, sorted by name: hash-table iteration order must
   never leak into the report, so identical runs diff cleanly. *)
let json_of_kernels results =
  Hashtbl.fold (fun name _ acc -> name :: acc) results []
  |> List.sort String.compare
  |> List.map (fun name ->
         match estimate_ns results name with
         | Some e -> Printf.sprintf {|    %S: %.0f|} name e
         | None -> Printf.sprintf {|    %S: null|} name)
  |> String.concat ",\n"

let json_of_obs (off, on) =
  if off > 0. then
    Printf.sprintf
      {|  "obs": { "off_ns": %.0f, "on_ns": %.0f, "overhead_pct": %.2f }|}
      off on
      ((on -. off) /. off *. 100.)
  else {|  "obs": null|}

let json_of_freshness (plain, fresh) =
  if plain > 0. then
    Printf.sprintf
      {|  "freshness": { "plain_campaign_ns": %.0f, "fresh_campaign_ns": %.0f, "overhead_pct": %.2f }|}
      plain fresh
      ((fresh -. plain) /. plain *. 100.)
  else {|  "freshness": null|}

let json_of_par (depth, nruns, rows) =
  let w1 = (List.hd rows).wall_s in
  let jobs_json =
    String.concat ",\n"
      (List.map
         (fun r ->
           Printf.sprintf
             {|      { "jobs": %d, "wall_s": %.3f, "speedup": %.2f, "identical": %b }|}
             r.pjobs r.wall_s
             (if r.wall_s > 0. then w1 /. r.wall_s else 0.)
             r.identical)
         rows)
  in
  Printf.sprintf
    {|  "par_campaign": {
    "scenario": "quickstart", "depth": %d, "runs": %d, "cores": %d,
    "jobs": [
%s
    ]
  }|}
    depth nruns
    (Artemis.Par.recommended_jobs ())
    jobs_json

let json_of_fleet (devices, rows) =
  let w1 = (List.hd rows).fwall_s in
  let jobs_json =
    String.concat ",\n"
      (List.map
         (fun r ->
           Printf.sprintf
             {|      { "jobs": %d, "wall_s": %.3f, "speedup": %.2f, "identical": %b }|}
             r.fjobs r.fwall_s
             (if r.fwall_s > 0. then w1 /. r.fwall_s else 0.)
             r.fidentical)
         rows)
  in
  Printf.sprintf
    {|  "fleet": {
    "scenario": "quickstart", "devices": %d, "cores": %d,
    "jobs": [
%s
    ]
  }|}
    devices
    (Artemis.Par.recommended_jobs ())
    jobs_json

let write_json ~file results ~obs ~freshness ~engines ~scalability
    ~non_watching ~par ~fleet =
  let oc = open_out file in
  Printf.fprintf oc
    {|{
  "bench": "alpaca checkpoint-free backend + differential runtime matrix (PR10)",
  "kernels_ns": {
%s
  },
%s,
%s,
%s,
%s,
  "engine_kernels": {
%s
  },
  "scalability": [
%s
  ],
  "non_watching": [
%s
  ]
}
|}
    (json_of_kernels results)
    (json_of_obs obs)
    (json_of_freshness freshness)
    (json_of_par par)
    (json_of_fleet fleet)
    (String.concat ",\n" (List.map json_of_engine engines))
    (json_of_scalability scalability)
    (json_of_non_watching non_watching);
  close_out oc;
  Printf.printf "\nwrote %s\n" file

let () =
  let fast = ref false and json = ref None and skip_reproduce = ref false in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
        fast := true;
        parse rest
    | "--skip-reproduce" :: rest ->
        skip_reproduce := true;
        parse rest
    | "--json" :: file :: rest ->
        json := Some file;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %S\nusage: %s [--fast] [--json FILE] [--skip-reproduce]\n"
          arg Sys.argv.(0);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if not (!fast || !skip_reproduce) then reproduce_all ();
  let engine_results = run_bechamel ~fast:!fast engine_tests in
  print_results "Engine comparison: interpreted vs compiled" engine_results;
  let par = par_campaign ~fast:!fast () in
  print_par_campaign par;
  let fleet = fleet_bench ~fast:!fast () in
  print_fleet_bench fleet;
  let engines = measure_engines_paired ~fast:!fast () in
  List.iter
    (fun e ->
      Printf.printf
        "%s (paired): interpreted %.0f / compiled %.0f / table %.0f ns; \
         compiled %.2fx interpreted, table %.2fx compiled\n"
        e.pair e.interpreted_ns e.compiled_ns e.table_ns
        (e.interpreted_ns /. e.compiled_ns)
        (e.compiled_ns /. e.table_ns))
    engines;
  let obs = measure_obs_paired ~fast:!fast () in
  (let off, on = obs in
   Printf.printf "obs paired off/on: %.0f / %.0f ns (%+.2f%%)\n" off on
     ((on -. off) /. off *. 100.));
  let freshness = measure_freshness_paired ~fast:!fast () in
  (let plain, fresh = freshness in
   Printf.printf "freshness paired plain/fresh campaign: %.0f / %.0f ns (%+.2f%%)\n"
     plain fresh
     ((fresh -. plain) /. plain *. 100.));
  let experiment_results =
    if !fast then None
    else begin
      let r = run_bechamel ~fast:false experiment_tests in
      print_results "Bechamel micro-benchmarks" r;
      Some r
    end
  in
  ignore experiment_results;
  match !json with
  | None -> ()
  | Some file ->
      let factors = if !fast then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
      let extras = if !fast then [ 0; 8 ] else [ 0; 8; 32; 128 ] in
      let scalability = Scalability.run ~factors () in
      let non_watching = Scalability.run_non_watching ~extras () in
      write_json ~file engine_results ~obs ~freshness ~engines ~scalability
        ~non_watching ~par ~fleet
