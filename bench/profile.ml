(* Raw-loop engine profiler: the bechamel suite in [main] is the number
   of record, but its statistical machinery is too slow for iterating on
   the engines' hot paths.  This binary times the same fsm-step kernels
   with plain counted loops (warmup + wall clock), plus the isolated
   miss/hit micro-kernels that localise a regression to the dispatch or
   the fire path.  Usage: dune exec bench/profile.exe *)
open Artemis_experiments
module A = Artemis
module Interp = A.Fsm.Interp
module Compile = A.Fsm.Compile
module Table = A.Fsm.Table

let kernel_trace =
  let tasks =
    [ "bodyTemp"; "calcAvg"; "heartRate"; "accel"; "classify"; "micSense";
      "filter"; "send" ]
  in
  List.concat
    (List.mapi
       (fun i task ->
         let ts n = A.Time.of_ms (200 * ((2 * i) + n)) in
         [
           { Interp.kind = Interp.Start; task; timestamp = ts 0; path = 1;
             dep_data = []; energy_mj = 20. };
           { Interp.kind = Interp.End; task; timestamp = ts 1; path = 1;
             dep_data = [ ("avgTemp", 36.5) ]; energy_mj = 19. };
         ])
       tasks)

let time name iters f =
  for _ = 1 to 1000 do f () done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do f () done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-26s %8.0f ns/iter\n%!" name (dt /. float_of_int iters *. 1e9)

let () =
  let machines = Scalability.replicated_machines 1 in
  let compiled = List.map Compile.compile machines in
  let tables = List.map Table.compile machines in
  let machines_a = Array.of_list machines in
  let compiled_a = Array.of_list compiled in
  let tables_a = Array.of_list tables in
  let istores_a = Array.of_list (List.map Interp.memory_store machines) in
  let cstores_a = Array.of_list (List.map Compile.memory_store compiled) in
  let tinsts_a = Array.of_list (List.map Table.instance tables) in
  let trace = Array.of_list kernel_trace in
  let nm = Array.length machines_a in
  let interp () =
    for e = 0 to Array.length trace - 1 do
      let ev = trace.(e) in
      for j = 0 to nm - 1 do
        ignore (Interp.step machines_a.(j) istores_a.(j) ev)
      done
    done
  in
  let comp () =
    for e = 0 to Array.length trace - 1 do
      let ev = trace.(e) in
      for j = 0 to nm - 1 do
        ignore (Compile.step compiled_a.(j) cstores_a.(j) ev)
      done
    done
  in
  let tbl () =
    for e = 0 to Array.length trace - 1 do
      let ev = trace.(e) in
      for j = 0 to nm - 1 do
        ignore (Table.step tables_a.(j) tinsts_a.(j) ev)
      done
    done
  in
  let n = 200_000 in
  (* per-machine cost over the full trace: which property pattern regressed? *)
  Array.iteri
    (fun j (m : A.Fsm.Ast.machine) ->
      let c = compiled_a.(j) and t = tables_a.(j) in
      let cs = cstores_a.(j) and ti = tinsts_a.(j) in
      time
        (Printf.sprintf "C %s" m.A.Fsm.Ast.machine_name)
        n
        (fun () ->
          for e = 0 to Array.length trace - 1 do
            ignore (Compile.step c cs trace.(e))
          done);
      time
        (Printf.sprintf "T %s" m.A.Fsm.Ast.machine_name)
        n
        (fun () ->
          for e = 0 to Array.length trace - 1 do
            ignore (Table.step t ti trace.(e))
          done))
    machines_a;
  (* the bechamel kernels, twice each to expose drift *)
  time "fsm-step-interpreted" n interp;
  time "fsm-step-compiled" n comp;
  time "fsm-step-table" n tbl;
  time "fsm-step-compiled(2)" n comp;
  time "fsm-step-table(2)" n tbl;
  (* dispatch cost in isolation: an event no machine watches *)
  let miss_ev =
    { Interp.kind = Interp.Start; task = "nosuchtask"; timestamp = A.Time.of_ms 1;
      path = 1; dep_data = []; energy_mj = 20. }
  in
  time "miss-compiled" (n * 10) (fun () ->
      for j = 0 to nm - 1 do
        ignore (Compile.step compiled_a.(j) cstores_a.(j) miss_ev)
      done);
  time "miss-table" (n * 10) (fun () ->
      for j = 0 to nm - 1 do
        ignore (Table.step tables_a.(j) tinsts_a.(j) miss_ev)
      done);
  (* fire cost in isolation: a start/end pair that always transitions *)
  let pick name =
    let rec go j =
      if j >= nm then invalid_arg name
      else if String.equal machines_a.(j).A.Fsm.Ast.machine_name name then j
      else go (j + 1)
    in
    go 0
  in
  let j = pick "maxTries_accel" in
  let c_mt = compiled_a.(j) and t_mt = tables_a.(j) in
  let s_mt = cstores_a.(j) and i_mt = tinsts_a.(j) in
  let hit_s =
    { Interp.kind = Interp.Start; task = "accel"; timestamp = A.Time.of_ms 1;
      path = 1; dep_data = []; energy_mj = 20. }
  in
  let hit_e = { hit_s with Interp.kind = Interp.End } in
  time "hit-pair-compiled" (n * 10) (fun () ->
      ignore (Compile.step c_mt s_mt hit_s);
      ignore (Compile.step c_mt s_mt hit_e));
  time "hit-pair-table" (n * 10) (fun () ->
      ignore (Table.step t_mt i_mt hit_s);
      ignore (Table.step t_mt i_mt hit_e))
